(* Pure shard geometry and inter-shard message ordering.

   Vertices are partitioned into contiguous blocks (shard 0 takes the
   first block, and the first [n mod shards] blocks are one vertex
   larger), so ownership is a closed-form function both parent and
   every worker compute identically — nothing about the partition is
   ever communicated.

   Cross-shard traffic is ordered by the same (send round, sender id,
   copy index) keys as {!Ls_local.Linksem}: an inbox slot merges parked
   carry-in copies first (descending key order), then fresh copies
   ascending.  Entry comparison lives here so the Exec worker and the
   tests share one definition. *)

let check ~shards ~n =
  if shards < 1 then invalid_arg "Router: shards must be >= 1";
  if n < 0 then invalid_arg "Router: n must be >= 0"

(* Half-open vertex range [lo, hi) owned by [shard]. *)
let range ~shards ~n shard =
  check ~shards ~n;
  if shard < 0 || shard >= shards then invalid_arg "Router.range: bad shard";
  let base = n / shards and extra = n mod shards in
  let lo = (shard * base) + min shard extra in
  let hi = lo + base + if shard < extra then 1 else 0 in
  (lo, hi)

let owner ~shards ~n v =
  check ~shards ~n;
  if v < 0 || v >= n then invalid_arg "Router.owner: vertex out of range";
  let base = n / shards and extra = n mod shards in
  let cut = extra * (base + 1) in
  if v < cut then v / (base + 1)
  else if base = 0 then invalid_arg "Router.owner: vertex out of range"
  else extra + ((v - cut) / base)

(* Trial sharding for the sweep runner: same contiguous-block geometry
   over trial indices. *)
let trial_range ~shards ~trials shard = range ~shards ~n:trials shard

(* One cross-shard (or checkpointed local) copy in flight: the payload
   is opaque bytes (marshaled ['m]); everything else is the deterministic
   coordinate key. *)
type entry = {
  e_slot : int;  (* inbox slot (phase-relative round) the copy is due *)
  e_sent : int;  (* absolute round it was transmitted *)
  e_src : int;
  e_dst : int;
  e_copy : int;
  e_bytes : string;
}

let compare_entry a b =
  compare
    (a.e_slot, a.e_sent, a.e_src, a.e_dst, a.e_copy)
    (b.e_slot, b.e_sent, b.e_src, b.e_dst, b.e_copy)

module Codec = Ls_sketch.Codec

let encode_entries buf es =
  Codec.add_int buf (List.length es);
  List.iter
    (fun e ->
      Codec.add_int buf e.e_slot;
      Codec.add_int buf e.e_sent;
      Codec.add_int buf e.e_src;
      Codec.add_int buf e.e_dst;
      Codec.add_int buf e.e_copy;
      Codec.add_int buf (String.length e.e_bytes);
      Buffer.add_string buf e.e_bytes)
    es

let decode_entries s cur =
  let ( let* ) = Result.bind in
  let* n = Codec.read_int s cur in
  if n < 0 then Error "Router: negative entry count"
  else begin
    let rec go k acc =
      if k = 0 then Ok (List.rev acc)
      else
        let* slot = Codec.read_int s cur in
        let* sent = Codec.read_int s cur in
        let* src = Codec.read_int s cur in
        let* dst = Codec.read_int s cur in
        let* copy = Codec.read_int s cur in
        let* len = Codec.read_int s cur in
        if len < 0 || len > Codec.remaining s cur then
          Error "Router: entry payload exceeds bytes present"
        else begin
          let bytes = String.sub s !cur len in
          cur := !cur + len;
          go (k - 1)
            ({ e_slot = slot; e_sent = sent; e_src = src; e_dst = dst;
               e_copy = copy; e_bytes = bytes }
            :: acc)
        end
    in
    go n []
  end
