(** Pure shard geometry and inter-shard message ordering.

    Contiguous-block vertex ownership, computed identically (and
    independently) by parent and workers, plus the wire codec for
    cross-shard message entries.  Delivery order within an inbox slot
    follows the same (send round, sender id, copy index) keys as
    {!Ls_local.Linksem} — that shared keying is what makes a sharded run
    bit-identical to the in-process executor. *)

val range : shards:int -> n:int -> int -> int * int
(** [range ~shards ~n s] is the half-open vertex interval [[lo, hi)]
    owned by shard [s].  Ranges partition [[0, n)]; the first
    [n mod shards] shards are one vertex larger. *)

val owner : shards:int -> n:int -> int -> int
(** The shard owning vertex [v] — the inverse of {!range}. *)

val trial_range : shards:int -> trials:int -> int -> int * int
(** Same geometry over trial indices, for the sweep runner. *)

type entry = {
  e_slot : int;  (** Inbox slot (phase-relative round) the copy is due. *)
  e_sent : int;  (** Absolute round it was transmitted. *)
  e_src : int;
  e_dst : int;
  e_copy : int;
  e_bytes : string;  (** Marshaled payload — opaque at this layer. *)
}

val compare_entry : entry -> entry -> int
(** Total order on the deterministic coordinate key
    [(slot, sent, src, dst, copy)]. *)

val encode_entries : Buffer.t -> entry list -> unit
val decode_entries : string -> int ref -> (entry list, string) result
(** Length-prefixed entry list codec; every length is validated against
    the bytes present before any allocation. *)
