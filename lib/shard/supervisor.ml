(* Worker-process supervision: fork, watch, restart, classify.

   The supervisor owns the generic lifecycle — socketpairs, the select
   loop, liveness probes, SIGKILL-and-restart, budget accounting — while
   the protocol layers (Exec, Sweep) own frame semantics through the
   [on_frame] callback.  Frames double as heartbeats: any frame from a
   worker resets its silence clock, so a healthy worker is never probed.

   Failure classification mirrors {!Ls_local.Resilient.run_classified}:

   - One worker dying repeatedly burns its per-shard restart budget with
     deterministic exponential backoff between attempts; an exhausted
     budget is a {e transient} failure (more retries might have helped —
     the environment, not the workload, gave out).

   - Every live worker dead inside one grace window is {e permanent},
     reported with the budgets unspent: when the whole fleet dies at
     once, restarting shards one by one cannot help.

   A worker that hangs without dying (alive but silent past the probe
   threshold) is SIGKILLed and takes the normal restart path — a hang is
   a death the kernel hasn't noticed yet. *)

module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Health = Ls_obs.Health

type policy = {
  restart_budget : int;  (* restarts per shard before giving up *)
  backoff_base_ms : int;
  backoff_factor : int;
  hang_timeout_ms : int;  (* silence before a liveness probe fires *)
  hang_probes : int;  (* consecutive probes before SIGKILL *)
  all_dead_grace_ms : int;  (* window for the all-dead scan *)
}

let default_policy =
  {
    restart_budget = 3;
    backoff_base_ms = 20;
    backoff_factor = 2;
    hang_timeout_ms = 2_000;
    hang_probes = 3;
    all_dead_grace_ms = 50;
  }

type failure = Transient | Permanent

exception Failed of failure * string

type ctx = {
  send : shard:int -> Frame.t -> unit;
  mark_done : shard:int -> unit;
}

type worker = {
  w_shard : int;
  mutable w_pid : int;
  mutable w_fd : Unix.file_descr option;  (* parent end; None once closed *)
  mutable w_incarnation : int;
  mutable w_restarts_left : int;
  mutable w_done : bool;
  mutable w_last_heard : float;
  mutable w_probes : int;
}

(* Deterministic sleep under signal pressure.  A bare [Unix.sleepf] may
   return early (or raise [EINTR] on platforms without nanosleep) when a
   SIGCHLD from a dying sibling worker lands mid-sleep — which would
   silently shorten the documented exponential restart backoff.  Loop on
   the remaining wall time until the full delay has elapsed. *)
let sleep_ms ms =
  if ms > 0 then begin
    let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.) in
    let rec go () =
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining > 0. then begin
        (try Unix.sleepf remaining
         with Unix.Unix_error (Unix.EINTR, _, _) -> ());
        go ()
      end
    in
    go ()
  end

(* Fork with bounded EAGAIN retry.  A fork that fails with EAGAIN (pid
   table or rlimit pressure) is a resource fault, not a worker fault: it
   burns its own small attempt budget with doubling backoff, never the
   caller's restart budget.  The first EAGAIN marks the "fork" subsystem
   degraded; a subsequent successful fork clears it — in the parent
   only, so a child never emits the exit event for an enter it did not
   observe.  Exhaustion clears the mark (keeping enter/exit paired) and
   raises {!Failed}[ (Transient, _)]: more attempts might have helped —
   the environment, not the workload, gave out. *)
let fork_with_retry ?(attempts = 5) ?(backoff_ms = 20) ~site () =
  if attempts < 1 then invalid_arg "Supervisor.fork_with_retry: attempts >= 1";
  let rec go attempt delay retried =
    match Sysio.fork ~site () with
    | 0 -> 0
    | pid ->
        if retried then Health.clear ~subsystem:"fork";
        pid
    | exception Unix.Unix_error (Unix.EAGAIN, _, _) ->
        Metrics.record_fork_retry ();
        Health.set_degraded ~subsystem:"fork" ~reason:"fork EAGAIN";
        if attempt + 1 >= attempts then begin
          Health.clear ~subsystem:"fork";
          raise
            (Failed
               ( Transient,
                 Printf.sprintf "fork(%s): EAGAIN persisted through %d attempts"
                   site attempts ))
        end;
        sleep_ms delay;
        go (attempt + 1) (delay * 2) true
  in
  go 0 backoff_ms false

(* Has the worker's process exited?  WNOHANG, reaping if so. *)
let reaped w =
  if w.w_pid = 0 then true
  else
    match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
    | 0, _ -> false
    | _ -> w.w_pid <- 0; true
    | exception Unix.Unix_error (Unix.ECHILD, _, _) -> w.w_pid <- 0; true

let reap_blocking w =
  if w.w_pid <> 0 then begin
    (try ignore (Unix.waitpid [] w.w_pid)
     with Unix.Unix_error (Unix.ECHILD, _, _) -> ());
    w.w_pid <- 0
  end

let close_fd w =
  match w.w_fd with
  | None -> ()
  | Some fd ->
      w.w_fd <- None;
      (try Unix.close fd with Unix.Unix_error _ -> ())

let run ?(policy = default_policy) ?trace
    ?(restored_round = fun ~shard:_ -> -1) ~shards
    ~(body : shard:int -> incarnation:int -> Unix.file_descr -> unit)
    ~(on_frame : ctx -> shard:int -> Frame.t -> unit)
    ?(on_restart = fun ~shard:_ ~incarnation:_ -> ()) () =
  if shards < 1 then invalid_arg "Supervisor.run: shards must be >= 1";
  let tr = Trace.resolve trace in
  let metrics = Metrics.enabled () in
  let workers =
    Array.init shards (fun s ->
        {
          w_shard = s;
          w_pid = 0;
          w_fd = None;
          w_incarnation = -1;
          w_restarts_left = policy.restart_budget;
          w_done = false;
          w_last_heard = 0.;
          w_probes = 0;
        })
  in
  let spawn w =
    let parent_fd, child_fd =
      Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0
    in
    w.w_incarnation <- w.w_incarnation + 1;
    let incarnation = w.w_incarnation in
    flush stdout;
    flush stderr;
    let fork () =
      try fork_with_retry ~site:"supervisor.fork" ()
      with e ->
        (* A fork that never happened must not leak its socketpair. *)
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        (try Unix.close child_fd with Unix.Unix_error _ -> ());
        raise e
    in
    match fork () with
    | 0 ->
        (* Child: drop every parent-side descriptor (ours and every
           sibling's), neutralize inherited process-global machinery —
           the transport (no recursive sharding), the ambient trace
           sink (the parent owns the trace file; events travel back as
           data) and the degraded-mode registry (the parent owns those
           transitions) — then run the body and _exit without flushing
           the inherited stdio buffers. *)
        (try Unix.close parent_fd with Unix.Unix_error _ -> ());
        Array.iter (fun o -> close_fd o) workers;
        Ls_local.Network.set_transport None;
        Trace.uninstall ();
        Health.reset ();
        (try body ~shard:w.w_shard ~incarnation child_fd
         with e ->
           Printf.eprintf "locsample shard %d (incarnation %d): %s\n%!"
             w.w_shard incarnation (Printexc.to_string e);
           Unix._exit 1);
        Unix._exit 0
    | pid ->
        (try Unix.close child_fd with Unix.Unix_error _ -> ());
        w.w_pid <- pid;
        w.w_fd <- Some parent_fd;
        w.w_done <- false;
        w.w_last_heard <- Unix.gettimeofday ();
        w.w_probes <- 0;
        if incarnation = 0 then begin
          (match tr with
          | Some s ->
              Trace.emit s
                (Trace.Shard_spawn { shard = w.w_shard; incarnation })
          | None -> ());
          if metrics then Metrics.record_shard_spawn ()
        end
        else begin
          (match tr with
          | Some s ->
              Trace.emit s
                (Trace.Shard_restart
                   {
                     shard = w.w_shard;
                     incarnation;
                     restored_round = restored_round ~shard:w.w_shard;
                   })
          | None -> ());
          if metrics then Metrics.record_shard_restart ()
        end
  in
  let ctx =
    {
      send =
        (fun ~shard f ->
          match workers.(shard).w_fd with
          | None -> ()
          | Some fd -> (
              try Frame.write_fd fd f
              with Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
                (* Peer died mid-conversation; its EOF will surface in
                   the select loop and take the restart path. *)
                ()));
      mark_done =
        (fun ~shard ->
          let w = workers.(shard) in
          if not w.w_done then begin
            w.w_done <- true;
            close_fd w;
            reap_blocking w
          end);
    }
  in
  (* Death handling: reap, then scan the whole fleet after a short grace
     window.  All live workers dead at once is permanent (budgets
     unspent); otherwise each dead shard individually burns budget and
     restarts with deterministic backoff. *)
  let handle_deaths first =
    close_fd first;
    reap_blocking first;
    sleep_ms policy.all_dead_grace_ms;
    (* A worker that wrote its closing frames and exited is done, not
       dead — its frames may simply still be queued in the socket
       buffer.  Drain every pending frame before judging the fleet, so
       exit-after-done is never misclassified as a casualty. *)
    let drained = ref true in
    while !drained do
      drained := false;
      Array.iter
        (fun w ->
          if not w.w_done then
            match w.w_fd with
            | None -> ()
            | Some fd -> (
                match Unix.select [ fd ] [] [] 0. with
                | [], _, _ -> ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
                | _ -> (
                    match Frame.read_fd fd with
                    | Ok frame ->
                        w.w_last_heard <- Unix.gettimeofday ();
                        w.w_probes <- 0;
                        on_frame ctx ~shard:w.w_shard frame;
                        drained := true
                    | Error _ ->
                        (* EOF or garbage with nothing useful buffered:
                           the worker is judged by the scan below. *)
                        close_fd w)))
        workers
    done;
    let live_or_dead = ref [] in
    Array.iter
      (fun w -> if not w.w_done then live_or_dead := w :: !live_or_dead)
      workers;
    let dead = List.filter (fun w -> w == first || reaped w) !live_or_dead in
    if
      List.length dead = List.length !live_or_dead
      && List.length dead = shards
    then
      raise
        (Failed
           ( Permanent,
             Printf.sprintf "all %d shards dead within one grace window"
               shards ));
    List.iter
      (fun w ->
        close_fd w;
        reap_blocking w;
        if w.w_restarts_left = 0 then
          raise
            (Failed
               ( Transient,
                 Printf.sprintf "shard %d: restart budget exhausted"
                   w.w_shard ));
        let used = policy.restart_budget - w.w_restarts_left in
        w.w_restarts_left <- w.w_restarts_left - 1;
        let rec pow b k = if k = 0 then 1 else b * pow b (k - 1) in
        sleep_ms (policy.backoff_base_ms * pow policy.backoff_factor used);
        on_restart ~shard:w.w_shard ~incarnation:(w.w_incarnation + 1);
        spawn w)
      (List.sort (fun a b -> compare a.w_shard b.w_shard) dead)
  in
  let all_done () = Array.for_all (fun w -> w.w_done) workers in
  let prev_sigpipe =
    try Some (Sys.signal Sys.sigpipe Sys.Signal_ignore)
    with Invalid_argument _ | Sys_error _ -> None
  in
  let cleanup () =
    Array.iter
      (fun w ->
        close_fd w;
        if w.w_pid <> 0 then begin
          (try Unix.kill w.w_pid Sys.sigkill
           with Unix.Unix_error _ -> ());
          reap_blocking w
        end)
      workers;
    match prev_sigpipe with
    | Some h -> ( try Sys.set_signal Sys.sigpipe h with Invalid_argument _ -> ())
    | None -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      (* The runtime refuses Unix.fork alongside live sibling domains;
         join the idle domain pool first (a fresh one is rebuilt lazily
         by the next in-process parallel call). *)
      Ls_par.Par.quiesce ();
      Array.iter spawn workers;
      while not (all_done ()) do
        let open_workers =
          Array.to_list workers
          |> List.filter_map (fun w ->
                 match w.w_fd with
                 | Some fd when not w.w_done -> Some (fd, w)
                 | _ -> None)
        in
        if open_workers = [] then
          (* Every fd closed yet not all done: nothing left to hear from. *)
          raise (Failed (Transient, "all worker channels closed prematurely"));
        let fds = List.map fst open_workers in
        let readable, _, _ =
          try Unix.select fds [] [] (float_of_int policy.hang_timeout_ms /. 1000.)
          with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
        in
        if readable = [] then begin
          (* Silence: probe every quiet worker.  Probes are wall-clock
             driven — metered, never traced. *)
          let now = Unix.gettimeofday () in
          List.iter
            (fun (_, w) ->
              if
                (not w.w_done)
                && now -. w.w_last_heard
                   >= float_of_int policy.hang_timeout_ms /. 1000.
              then begin
                if metrics then Metrics.record_shard_probe ();
                if reaped w then handle_deaths w
                else begin
                  w.w_probes <- w.w_probes + 1;
                  if w.w_probes >= policy.hang_probes then begin
                    (* Alive but hung: make the hang a death. *)
                    (try Unix.kill w.w_pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    handle_deaths w
                  end
                end
              end)
            open_workers
        end
        else begin
          (* handle_deaths drains buffers, closes descriptors and forks
             replacements, so the rest of this [readable] list is stale
             the moment it runs (a listed fd may be empty again, or its
             number reused by a fresh socketpair).  Abandon the list and
             re-select. *)
          let exception Fleet_changed in
          try
            List.iter
              (fun fd ->
                match List.assq_opt fd open_workers with
                | None -> ()
                | Some w when w.w_done || w.w_fd = None -> ()
                | Some w -> (
                    match Frame.read_fd fd with
                    | Ok frame ->
                        w.w_last_heard <- Unix.gettimeofday ();
                        w.w_probes <- 0;
                        on_frame ctx ~shard:w.w_shard frame
                    | Error Frame.Closed when w.w_done -> ()
                    | Error Frame.Closed | Error Frame.Truncated ->
                        handle_deaths w;
                        raise Fleet_changed
                    | Error (Frame.Malformed _) ->
                        (* Protocol corruption is indistinguishable from a
                           worker writing garbage: kill and restart. *)
                        (try Unix.kill w.w_pid Sys.sigkill
                         with Unix.Unix_error _ -> ());
                        handle_deaths w;
                        raise Fleet_changed))
              readable
          with Fleet_changed -> ()
        end
      done)
