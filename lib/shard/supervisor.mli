(** Worker-process supervision: fork, watch, restart, classify.

    Owns the generic lifecycle — socketpairs, the select loop, liveness
    probes, SIGKILL-and-restart, budget accounting — while protocol
    layers (Exec, Sweep) own frame semantics via [on_frame].  Frames
    double as heartbeats: any frame resets the sender's silence clock.

    Failure classification mirrors
    {!Ls_local.Resilient.run_classified}: a single shard dying
    repeatedly burns its restart budget with deterministic exponential
    backoff and an exhausted budget raises {!Failed}[ (Transient, _)];
    the whole fleet dead inside one grace window raises
    {!Failed}[ (Permanent, _)] with the budgets unspent.  A worker that
    hangs without dying (silent past [hang_probes] consecutive probes)
    is SIGKILLed and takes the normal restart path.

    Lifecycle is observable: incarnation 0 emits
    {!Ls_obs.Trace.Shard_spawn}, restarts emit
    {!Ls_obs.Trace.Shard_restart} (with the checkpointed round from
    [restored_round]), and probes bump the [shard_probes] metric. *)

type policy = {
  restart_budget : int;  (** Restarts per shard before giving up. *)
  backoff_base_ms : int;
  backoff_factor : int;  (** Delay before restart k is base·factorᵏ. *)
  hang_timeout_ms : int;  (** Silence before a liveness probe fires. *)
  hang_probes : int;  (** Consecutive probes before SIGKILL. *)
  all_dead_grace_ms : int;  (** Window for the all-dead scan. *)
}

val default_policy : policy
(** Budget 3 (matching {!Ls_local.Resilient.default_policy}), 20 ms
    base backoff doubling, 2 s probe timeout, 3 probes, 50 ms grace. *)

val sleep_ms : int -> unit
(** Sleep for the full [ms] milliseconds even under signal pressure: a
    bare [Unix.sleepf] can return early (or raise [EINTR]) when a SIGCHLD
    from a dying worker lands mid-sleep, which would shorten the
    deterministic restart backoff.  Loops on the remaining wall time.
    Also used by the serve accept-loop retry path. *)

type failure = Transient | Permanent

exception Failed of failure * string

val fork_with_retry :
  ?attempts:int -> ?backoff_ms:int -> site:string -> unit -> int
(** [Unix.fork] through {!Sysio.fork} with bounded EAGAIN retry: up to
    [attempts] (default 5) tries, sleeping [backoff_ms] (default 20)
    doubling between them.  EAGAIN is a resource fault, not a worker
    fault — retries burn this budget, never the caller's restart budget.
    The first EAGAIN marks the ["fork"] subsystem degraded in
    {!Ls_obs.Health} and bumps the [fork_retries] metric; a later
    successful fork clears the mark in the parent.  Exhaustion raises
    {!Failed}[ (Transient, _)].  Returns the child pid ([0] in the
    child, as [Unix.fork]). *)

type ctx = {
  send : shard:int -> Frame.t -> unit;
      (** Write a frame to a shard; a write to a freshly dead worker is
          dropped (its death surfaces via the select loop). *)
  mark_done : shard:int -> unit;
      (** Declare a shard's protocol complete: its channel closes and
          its exit is reaped; a later EOF is normal, not a death. *)
}

val run :
  ?policy:policy ->
  ?trace:Ls_obs.Trace.t ->
  ?restored_round:(shard:int -> int) ->
  shards:int ->
  body:(shard:int -> incarnation:int -> Unix.file_descr -> unit) ->
  on_frame:(ctx -> shard:int -> Frame.t -> unit) ->
  ?on_restart:(shard:int -> incarnation:int -> unit) ->
  unit ->
  unit
(** Fork [shards] workers and supervise until every one is marked done.
    [body] runs in the child with the transport cleared and the ambient
    trace sink uninstalled, and must communicate only through its
    descriptor (never stdout); it exits via [_exit].  [on_frame] runs in
    the parent for every received frame.  [on_restart] runs just before
    a replacement worker forks, so the protocol layer can reset its
    per-shard state; [restored_round] supplies the round recorded in the
    shard's checkpoint for the {!Ls_obs.Trace.Shard_restart} event.
    Raises {!Failed} on budget exhaustion (transient) or fleet-wide
    death (permanent); always reaps and closes everything it opened. *)
