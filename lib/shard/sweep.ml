(* Sharded trial sweeps: the multi-process counterpart of
   {!Ls_par.Par.run_trials_timed}.

   Each worker owns a contiguous trial range ({!Router.trial_range}) and
   runs it sequentially.  Trial [i] is a pure function of the [i]-th
   derived RNG stream, so the partition cannot change any result — and
   per-trial trace events are captured in the worker, shipped back as
   data, and re-emitted by the parent in trial-index order, exactly the
   buffering discipline {!Ls_par.Par} uses across domains.  Metrics are
   a reset/snapshot/absorb round trip per worker.

   Fault tolerance mirrors {!Exec}: workers checkpoint completed trials
   (results, events, seconds, metrics — all deterministic), a killed
   worker is re-forked by the {!Supervisor} and resumes after the last
   checkpointed trial, and every per-trial heartbeat frame doubles as a
   liveness signal.  Kill specs address sweep trials as phase 0, round =
   global trial index. *)

module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Splitmix = Ls_rng.Splitmix

let k_hb = 16 (* worker -> parent: a = last completed trial index *)
let k_done = 17 (* worker -> parent: payload = marshaled summary *)

type 'a summary = {
  sw_results : 'a array;  (* owned trial block, index i - lo *)
  sw_events : Trace.event list array;  (* per owned trial *)
  sw_secs : float array;
  sw_metrics : Metrics.snapshot;
}

type 'a wstate = {
  wt_trial : int;  (* last completed global trial index *)
  wt_results : 'a option array;
  wt_events : Trace.event list array;
  wt_secs : float array;
  wt_metrics : Metrics.snapshot;
}

let marshal v = Marshal.to_string v [ Marshal.Closures ]
let unmarshal s : 'a = Marshal.from_string s 0

let run_trials_timed (cfg : Exec.config) ~n ~seed (f : Rng.t -> 'a) :
    'a array * Par.timing =
  if n < 0 then invalid_arg "Sweep.run_trials_timed: n must be non-negative";
  let t0 = Unix.gettimeofday () in
  let shards = max 1 (min cfg.Exec.shards (max 1 n)) in
  if n = 0 then
    ([||], { Par.wall = Unix.gettimeofday () -. t0; per_trial = [||]; domains = shards })
  else begin
    let rngs = Rng.streams seed n in
    let ship_events = Trace.buffering_needed () in
    let run_id =
      Splitmix.mix64
        (Int64.logxor seed
           (Int64.of_int ((n * 1_000_003) + Unix.getpid ())))
    in
    let body ~shard ~incarnation fd =
      let lo, hi = Router.trial_range ~shards ~trials:n shard in
      let nt = hi - lo in
      (* A private in-memory sink so producers see a reachable sink and
         capture scopes fill; the parent's sink (and its JSONL file)
         belongs to the parent alone. *)
      if ship_events then Trace.install (Trace.make ());
      Metrics.reset ();
      let ws =
        let fresh =
          {
            wt_trial = lo - 1;
            wt_results = Array.make (max nt 1) None;
            wt_events = Array.make (max nt 1) [];
            wt_secs = Array.make (max nt 1) 0.;
            wt_metrics = Metrics.empty;
          }
        in
        if incarnation = 0 then fresh
        else
          match Ckpt.load ~dir:cfg.Exec.dir ~run_id ~shard with
          | Some (meta, payload) when meta.Ckpt.phase = 0 ->
              (unmarshal payload : 'a wstate)
          | _ -> fresh
      in
      (* Fold the checkpointed counter delta back in, so the final
         snapshot covers the whole range regardless of incarnation. *)
      Metrics.absorb ws.wt_metrics;
      let results = ws.wt_results in
      let events = ws.wt_events and secs = ws.wt_secs in
      for i = ws.wt_trial + 1 to hi - 1 do
        (match
           Exec.kill_matches cfg.Exec.kills ~shard ~phase:0 ~round:i
             ~incarnation
         with
        | Some k -> Exec.fire_kill k
        | None -> ());
        let s = Unix.gettimeofday () in
        let r, evs =
          if ship_events then
            let r, rec_ = Trace.capture (fun () -> f rngs.(i)) in
            (r, Trace.events_of_recording rec_)
          else (f rngs.(i), [])
        in
        secs.(i - lo) <- Unix.gettimeofday () -. s;
        results.(i - lo) <- Some r;
        events.(i - lo) <- evs;
        Frame.write_fd fd
          { Frame.kind = k_hb; a = i; b = shard; c = 0; payload = "" };
        if (i - lo + 1) mod cfg.Exec.ckpt_every = 0 && i < hi - 1 then
          Ckpt.save_best_effort ~dir:cfg.Exec.dir
            { Ckpt.run_id; shard; phase = 0; round = i }
            (marshal
               {
                 wt_trial = i;
                 wt_results = results;
                 wt_events = events;
                 wt_secs = secs;
                 wt_metrics = Metrics.snapshot ();
               })
      done;
      let summary =
        {
          sw_results =
            Array.init nt (fun i ->
                match results.(i) with Some r -> r | None -> assert false);
          sw_events = Array.sub events 0 (max nt 0);
          sw_secs = Array.sub secs 0 (max nt 0);
          sw_metrics = Metrics.snapshot ();
        }
      in
      Frame.write_fd fd
        { Frame.kind = k_done; a = hi - 1; b = shard; c = 0;
          payload = marshal summary }
    in
    let summaries : 'a summary option array = Array.make shards None in
    let on_frame ctx ~shard (fr : Frame.t) =
      if fr.Frame.kind = k_done then begin
        summaries.(shard) <- Some (unmarshal fr.Frame.payload : 'a summary);
        ctx.Supervisor.mark_done ~shard
      end
      else if fr.Frame.kind <> k_hb then
        raise
          (Supervisor.Failed
             (Supervisor.Permanent, "unexpected frame kind from sweep worker"))
    in
    let restored_round ~shard =
      match Ckpt.load ~dir:cfg.Exec.dir ~run_id ~shard with
      | Some (meta, _) when meta.Ckpt.phase = 0 -> meta.Ckpt.round
      | _ -> -1
    in
    Supervisor.run ~policy:cfg.Exec.policy ~restored_round ~shards ~body
      ~on_frame ();
    for s = 0 to shards - 1 do
      Ckpt.remove ~dir:cfg.Exec.dir ~run_id ~shard:s
    done;
    let summaries =
      Array.map (function Some s -> s | None -> assert false) summaries
    in
    (* Reassemble in trial-index order: blocks are contiguous ascending. *)
    let results =
      Array.concat (Array.to_list (Array.map (fun s -> s.sw_results) summaries))
    in
    let per_trial =
      Array.concat (Array.to_list (Array.map (fun s -> s.sw_secs) summaries))
    in
    (* Flush events in trial-index order, then close the batch — the
       same stream {!Ls_par.Par.collect} would have produced. *)
    if ship_events then begin
      Array.iter
        (fun s -> Array.iter (List.iter Trace.to_ambient) s.sw_events)
        summaries;
      Trace.to_ambient (Trace.Batch { items = n })
    end;
    if Metrics.enabled () then begin
      Array.iter (fun s -> Metrics.absorb s.sw_metrics) summaries;
      Metrics.record_batch ~items:n
        ~per_worker:(Array.map (fun s -> Array.length s.sw_results) summaries)
    end;
    ( results,
      {
        Par.wall = Unix.gettimeofday () -. t0;
        per_trial;
        domains = shards;
      } )
  end
