(** Sharded trial sweeps: {!Ls_par.Par.run_trials_timed} across worker
    OS processes with [kill -9] fault tolerance.

    Each worker runs a contiguous trial block sequentially.  Trial [i]
    is a pure function of the [i]-th derived RNG stream, so the
    partition cannot change results; per-trial trace events are shipped
    back and re-emitted in trial-index order (the {!Ls_par.Par}
    buffering discipline), and metrics travel as snapshot deltas folded
    in with {!Ls_obs.Metrics.absorb} — making sweep output bit-identical
    to the in-process runner for any shard count.

    Workers checkpoint completed trials every
    [config.ckpt_every] trials; a worker killed mid-sweep is re-forked
    and resumes after its last checkpoint.  Kill specs address sweep
    trials as phase [0], round = global trial index. *)

val run_trials_timed :
  Exec.config -> n:int -> seed:int64 -> (Ls_rng.Rng.t -> 'a) -> 'a array * Ls_par.Par.timing
(** Drop-in for {!Ls_par.Par.run_trials_timed} (the [domains] field of
    the returned timing reports the shard count).  Raises
    {!Supervisor.Failed} when the fleet cannot complete within its
    restart budgets. *)
