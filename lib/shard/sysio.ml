(* Syscall choke point: every IO operation the robustness story cares
   about — checkpoint/snapshot writes, renames, closes, the serve accept
   loop, worker forks — goes through one of these wrappers instead of
   calling [Unix] directly.  In production the wrappers are the raw
   syscalls plus the shared EINTR-retry discipline; under test a hook
   can be installed that decides each operation's fate before the real
   syscall runs (fail with a named [Unix.error], write short, or raise
   a synthetic EINTR).

   The hook receives deterministic coordinates: the operation, a [site]
   string naming the call site ("ckpt.write", "server.accept", ...) and
   a per-(op, site) consultation count.  [Ls_chaos.Sysfault] derives
   every verdict from a hash of those coordinates, so a failure
   schedule replays bit-identically — the same trick the message-fault
   layer plays with (round, src, dst, copy).

   Injected faults are raised {e before} the real syscall, so an
   injected EINTR or ENOSPC never leaves a half-performed operation
   behind: retry loops above this layer stay sound. *)

module Metrics = Ls_obs.Metrics

type op = Write | Rename | Close | Accept | Fork | Open

let op_name = function
  | Write -> "write"
  | Rename -> "rename"
  | Close -> "close"
  | Accept -> "accept"
  | Fork -> "fork"
  | Open -> "open"

type outcome =
  | Pass
  | Fail of Unix.error  (* raise before the syscall runs *)
  | Short of int  (* write at most this many bytes (clamped to >= 1) *)
  | Intr  (* synthetic EINTR before the syscall runs *)

type hook = op:op -> site:string -> count:int -> outcome

let the_hook : hook option ref = ref None
let counts : (string, int) Hashtbl.t = Hashtbl.create 32
let m = Mutex.create ()

let set_hook h = the_hook := h
let hook_installed () = Option.is_some !the_hook

let reset_counts () =
  Mutex.lock m;
  Hashtbl.reset counts;
  Mutex.unlock m

(* The per-(op, site) consultation index: the [count] coordinate of the
   hook's verdict hash.  Increments on every consultation, including
   retries — an EINTR storm is just several consecutive Intr verdicts at
   successive counts. *)
let next_count op site =
  let key = op_name op ^ "|" ^ site in
  Mutex.lock m;
  let n = Option.value (Hashtbl.find_opt counts key) ~default:0 in
  Hashtbl.replace counts key (n + 1);
  Mutex.unlock m;
  n

let consult ~op ~site =
  match !the_hook with
  | None -> Pass
  | Some h ->
      let verdict = h ~op ~site ~count:(next_count op site) in
      (match verdict with Pass -> () | _ -> Metrics.record_sysfault ());
      verdict

(* The one EINTR-retry discipline (satellite of the Frame full-IO
   loops): run [f] again for as long as it raises EINTR.  Callers put
   the hook consultation {e inside} [f], so each retry draws a fresh
   verdict — a storm of injected EINTRs terminates when the schedule
   says so, and the retry path itself is what gets exercised. *)
let rec retry_eintr f =
  try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let write ~site fd buf off len =
  match consult ~op:Write ~site with
  | Pass -> Unix.write fd buf off len
  | Fail e -> raise (Unix.Unix_error (e, "write", site))
  | Intr -> raise (Unix.Unix_error (Unix.EINTR, "write", site))
  | Short k ->
      (* A zero-byte "success" would spin the caller's write loop
         forever; the shortest honest short write is one byte. *)
      Unix.write fd buf off (max 1 (min k len))

let rename ~site src dst =
  retry_eintr (fun () ->
      match consult ~op:Rename ~site with
      | Fail e -> raise (Unix.Unix_error (e, "rename", src))
      | Intr -> raise (Unix.Unix_error (Unix.EINTR, "rename", src))
      | Pass | Short _ -> Unix.rename src dst)

let close ~site fd =
  retry_eintr (fun () ->
      match consult ~op:Close ~site with
      | Fail e -> raise (Unix.Unix_error (e, "close", site))
      | Intr -> raise (Unix.Unix_error (Unix.EINTR, "close", site))
      | Pass | Short _ -> (
          (* An injected EINTR fires before the real close, so retrying
             is safe.  A {e real} EINTR from close(2) is different: on
             Linux the descriptor is gone regardless, and a blind retry
             could close an unrelated fd that reused the number. *)
          try Unix.close fd with Unix.Unix_error (Unix.EINTR, _, _) -> ()))

let accept ~site ?cloexec fd =
  match consult ~op:Accept ~site with
  | Fail e -> raise (Unix.Unix_error (e, "accept", site))
  | Intr -> raise (Unix.Unix_error (Unix.EINTR, "accept", site))
  | Pass | Short _ -> Unix.accept ?cloexec fd

let fork ~site () =
  match consult ~op:Fork ~site with
  | Fail e -> raise (Unix.Unix_error (e, "fork", site))
  | Intr -> raise (Unix.Unix_error (Unix.EINTR, "fork", site))
  | Pass | Short _ -> Unix.fork ()

let openfile ~site path flags perm =
  retry_eintr (fun () ->
      match consult ~op:Open ~site with
      | Fail e -> raise (Unix.Unix_error (e, "open", path))
      | Intr -> raise (Unix.Unix_error (Unix.EINTR, "open", path))
      | Pass | Short _ -> Unix.openfile path flags perm)
