(** Syscall choke point with a pluggable fault hook.

    Checkpoint/snapshot writes, renames, closes, the serve accept loop
    and worker forks all call these wrappers instead of [Unix] directly.
    With no hook installed they are the raw syscalls plus the shared
    EINTR-retry discipline ({!retry_eintr} — the same loop the
    {!Frame} full-IO helpers model).  With a hook installed, each
    operation's fate is decided first from deterministic coordinates
    (operation, call-site name, per-site consultation count), which is
    how {!Ls_chaos.Sysfault} injects [ENOSPC]/[EMFILE]/[EAGAIN]/short
    writes/EINTR storms with bit-identical replay.

    Injected faults fire {e before} the real syscall, so they never
    leave a half-performed operation behind. *)

type op = Write | Rename | Close | Accept | Fork | Open

val op_name : op -> string

type outcome =
  | Pass  (** Run the real syscall. *)
  | Fail of Unix.error  (** Raise [Unix_error] before the syscall. *)
  | Short of int
      (** Writes only: write at most this many bytes (clamped to
          [1..len]); other operations treat it as {!Pass}. *)
  | Intr  (** Raise a synthetic [EINTR] before the syscall. *)

type hook = op:op -> site:string -> count:int -> outcome

val set_hook : hook option -> unit
(** Install (or clear) the process-global hook.  Inherited across
    [fork], so a daemon's worker keeps its parent's schedule. *)

val hook_installed : unit -> bool

val reset_counts : unit -> unit
(** Zero every per-(op, site) consultation count — required before
    replaying a schedule from the start. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run [f] again for as long as it raises [EINTR] — the one shared
    retry helper for non-looping syscalls (rename, close, open). *)

(** {1 Wrapped syscalls}

    [site] names the call site and is part of the hook's verdict
    coordinates; distinct sites draw independent fates. *)

val write : site:string -> Unix.file_descr -> bytes -> int -> int -> int
(** Like [Unix.write]; no retry loop here — callers ({!Frame.write_string})
    own the short-write/EINTR loop. *)

val rename : site:string -> string -> string -> unit
val close : site:string -> Unix.file_descr -> unit
(** EINTR-retried via {!retry_eintr}.  A {e real} [EINTR] from
    [close(2)] is swallowed rather than retried (the descriptor is
    already gone on Linux); injected ones fire before the syscall and
    are retried safely. *)

val accept :
  site:string -> ?cloexec:bool -> Unix.file_descr ->
  Unix.file_descr * Unix.sockaddr

val fork : site:string -> unit -> int

val openfile :
  site:string -> string -> Unix.open_flag list -> Unix.file_perm ->
  Unix.file_descr
