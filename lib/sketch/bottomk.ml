module Splitmix = Ls_rng.Splitmix
module Metrics = Ls_obs.Metrics

module Key = struct
  type t = int array

  let equal = ( = )
  let hash = Hashtbl.hash
end

module Tbl = Hashtbl.Make (Key)

type entry = { rank : float; mutable count : int }

type t = {
  k : int;
  seed : int64;
  salt : int64;
  entries : entry Tbl.t;
  mutable total : int;
  mutable evictions : int;
  (* Cached (largest rank, its key) while the sketch is saturated; [None]
     below saturation.  Rebuilt by an O(k) scan on each eviction. *)
  mutable worst : (float * int array) option;
}

let salt_of_seed seed = Splitmix.mix64 (Int64.logxor seed 0xB0770B0770B0770BL)

let create ~k ~seed =
  if k < 1 then invalid_arg "Bottomk.create: k must be >= 1";
  {
    k;
    seed;
    salt = salt_of_seed seed;
    entries = Tbl.create (2 * k);
    total = 0;
    evictions = 0;
    worst = None;
  }

let k t = t.k
let seed t = t.seed

let hash_key salt (key : int array) =
  let h = ref (Splitmix.mix64 (Int64.logxor salt 0x9E3779B97F4A7C15L)) in
  h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int (Array.length key)));
  Array.iter
    (fun c -> h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int c)))
    key;
  !h

(* Rank in (0,1]: the top 53 bits of the key hash, shifted into the unit
   interval.  Pure function of (seed, key). *)
let rank t key =
  let bits = Int64.shift_right_logical (hash_key t.salt key) 11 in
  (Int64.to_float bits +. 1.) *. 0x1p-53

(* Total order on (rank, key): rank first, lexicographic key as the
   (astronomically unlikely) tie-break, so truncation is deterministic. *)
let before (r1, k1) (r2, k2) =
  r1 < r2 || (r1 = r2 && compare k1 k2 < 0)

let size t = Tbl.length t.entries
let mem t key = Tbl.mem t.entries key

let count t key =
  Option.map (fun e -> e.count) (Tbl.find_opt t.entries key)

let find_worst t =
  Tbl.fold
    (fun key e acc ->
      match acc with
      | Some w when before (e.rank, key) w -> acc
      | _ -> Some (e.rank, key))
    t.entries None

let add ?(count = 1) t key =
  if count < 0 then invalid_arg "Bottomk.add: count must be >= 0";
  t.total <- t.total + count;
  Metrics.record_sketch_add ();
  match Tbl.find_opt t.entries key with
  | Some e -> e.count <- e.count + count
  | None -> (
      let r = rank t key in
      if Tbl.length t.entries < t.k then begin
        Tbl.replace t.entries (Array.copy key) { rank = r; count };
        if Tbl.length t.entries = t.k then t.worst <- find_worst t
      end
      else
        match t.worst with
        | Some ((_, wk) as w) when before (r, key) w ->
            Tbl.remove t.entries wk;
            Tbl.replace t.entries (Array.copy key) { rank = r; count };
            t.evictions <- t.evictions + 1;
            Metrics.record_sketch_eviction ();
            t.worst <- find_worst t
        | _ -> ())

let threshold t =
  match t.worst with Some (r, _) -> r | None -> 1.0

let total t = t.total
let evictions t = t.evictions

let distinct t =
  let m = Tbl.length t.entries in
  if m < t.k then float_of_int m
  else float_of_int (t.k - 1) /. threshold t

let rel_std_error t =
  if t.k <= 2 then infinity else 1. /. sqrt (float_of_int (t.k - 2))

let sorted_entries t =
  let all = Tbl.fold (fun key e l -> (key, e) :: l) t.entries [] in
  List.sort
    (fun (k1, e1) (k2, e2) ->
      if e1.rank < e2.rank then -1
      else if e1.rank > e2.rank then 1
      else compare k1 k2)
    all

let entries t = List.map (fun (key, e) -> (key, e.count)) (sorted_entries t)

let compatible a b = a.k = b.k && Int64.equal a.seed b.seed

let merge a b =
  if not (compatible a b) then
    invalid_arg "Bottomk.merge: incompatible sketches (k and seed must match)";
  let m = create ~k:a.k ~seed:a.seed in
  let acc = Tbl.create (2 * a.k) in
  let feed t =
    Tbl.iter
      (fun key e ->
        match Tbl.find_opt acc key with
        | Some (r, c) -> Tbl.replace acc key (r, c + e.count)
        | None -> Tbl.replace acc key (e.rank, e.count))
      t.entries
  in
  feed a;
  feed b;
  let all = Tbl.fold (fun key (r, c) l -> (key, r, c) :: l) acc [] in
  let all =
    List.sort
      (fun (k1, r1, _) (k2, r2, _) ->
        if r1 < r2 then -1 else if r1 > r2 then 1 else compare k1 k2)
      all
  in
  List.iteri
    (fun i (key, r, c) ->
      if i < m.k then
        Tbl.replace m.entries (Array.copy key) { rank = r; count = c })
    all;
  if Tbl.length m.entries = m.k then m.worst <- find_worst m;
  m.total <- a.total + b.total;
  Metrics.record_sketch_merge ();
  m

let magic = "BKS1"

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf magic;
  Codec.add_int buf t.k;
  Codec.add_i64 buf t.seed;
  Codec.add_int buf t.total;
  Codec.add_int buf (Tbl.length t.entries);
  List.iter
    (fun (key, e) ->
      Codec.add_int buf (Array.length key);
      Array.iter (Codec.add_int buf) key;
      Codec.add_int buf e.count)
    (sorted_entries t);
  Buffer.contents buf

let decode s =
  try
    let cur = ref 0 in
    Codec.check_magic s cur magic;
    let k = Codec.get_int s cur in
    let seed = Codec.get_i64 s cur in
    let total = Codec.get_int s cur in
    let n = Codec.get_int s cur in
    if k < 1 then invalid_arg "Bottomk.create: k must be >= 1";
    if n < 0 then invalid_arg "Bottomk.of_string: negative entry count";
    if n > k then invalid_arg "Bottomk.of_string: more entries than k";
    if total < 0 then invalid_arg "Bottomk.of_string: negative total";
    (* Size the table by the entries actually present, never by the
       declared k: a crafted 40-byte header cannot force a 2k-slot
       allocation.  (Hashtbl grows on demand if a legitimate sketch later
       admits more keys.) *)
    let t =
      {
        k;
        seed;
        salt = salt_of_seed seed;
        entries = Tbl.create (2 * min k (n + 1));
        total = 0;
        evictions = 0;
        worst = None;
      }
    in
    for _ = 1 to n do
      let len = Codec.get_int s cur in
      if len < 0 then invalid_arg "Bottomk.of_string: negative key length";
      if len > Codec.remaining s cur / 8 then
        invalid_arg "Bottomk.of_string: declared key exceeds remaining bytes";
      let key = Array.init len (fun _ -> Codec.get_int s cur) in
      let count = Codec.get_int s cur in
      Tbl.replace t.entries key { rank = rank t key; count }
    done;
    if !cur <> String.length s then
      invalid_arg "Bottomk.of_string: trailing bytes after entries";
    if Tbl.length t.entries = k then t.worst <- find_worst t;
    t.total <- total;
    Ok t
  with Invalid_argument msg -> Error msg

let of_string s =
  match decode s with Ok t -> t | Error msg -> invalid_arg msg

let digest t = Codec.digest (to_string t)
