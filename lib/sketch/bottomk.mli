(** Bottom-k sketch over configuration keys (KMV / order-statistics
    distinct counting, the deterministic-mergeable face of the
    bottom-k/PPSWOR family).

    Every key is assigned a {e rank} in (0,1] by a hash derived
    deterministically from the [seed] — the same key always draws the
    same rank, in every sketch of the family, so ranks behave like the
    "uniform random tag per distinct key" of the classical scheme while
    consuming no stream randomness.  The sketch retains the [k] keys of
    smallest rank together with their {b exact} multiplicities.

    {2 Why retained counts are exact}

    A key that ends up retained has one of the [k] smallest ranks among
    all distinct keys seen; since ranks are fixed per key, it also has
    one of the [k] smallest ranks in every prefix of the stream that
    contains it — so it is admitted on first sight and never evicted.
    Every later occurrence therefore lands on its live counter: the
    retained multiset is a pure function of the {e set} of (key, count)
    stream contents, independent of arrival order.  The same argument
    makes {!merge} exact: a key retained in the merge was retained in
    every input sketch whose stream contained it, so summing input
    counters reconstructs its full stream count.

    {2 Merge monoid}

    {!merge} (union, counter sum per key, keep the [k] smallest ranks) is
    commutative and associative with the empty sketch as identity, and
    commutes with {!add} — the same contract as {!Cms}, so the two ride
    the same {!Ls_par.Par.fold_trials} reduction and serialize
    byte-identically at every domain count.

    {2 Distinct-count estimate}

    With fewer than [k] distinct keys the sketch is exhaustive and
    {!distinct} is exact.  Once saturated, [distinct = (k-1) / r_k] where
    [r_k] is the largest retained rank — the standard KMV estimator,
    unbiased with relative standard error [1/sqrt(k-2)]
    (Beyer et al., SIGMOD 2007). *)

type t

val create : k:int -> seed:int64 -> t
(** Fresh empty sketch retaining at most [k] keys ([k] ≥ 1) — the
    identity of {!merge} for its [(k, seed)] family. *)

val k : t -> int
val seed : t -> int64

val add : ?count:int -> t -> int array -> unit
(** Record [count] (default 1, must be ≥ 0) occurrences of a key.  The
    key array is copied if the sketch retains it. *)

val total : t -> int
(** Stream length fed in, including occurrences of non-retained keys. *)

val size : t -> int
(** Retained distinct keys, ≤ [k]. *)

val mem : t -> int array -> bool

val count : t -> int array -> int option
(** [Some] exact multiplicity for a retained key, [None] otherwise. *)

val rank : t -> int array -> float
(** The key's deterministic rank in (0,1] — a pure function of
    [(seed, key)], exposed for tests. *)

val threshold : t -> float
(** The largest retained rank when saturated, [1.0] otherwise: a new key
    enters the sketch iff its rank beats this. *)

val distinct : t -> float
(** Estimated number of distinct keys in the stream (exact below
    saturation, KMV estimate above). *)

val rel_std_error : t -> float
(** The estimator's relative standard error, [1/sqrt(k-2)] (∞ for
    k ≤ 2): the yardstick the guarantee tests measure against. *)

val entries : t -> (int array * int) list
(** Retained (key, exact count) pairs in rank order (deterministic). *)

val evictions : t -> int
(** Keys displaced after admission — a saturation diagnostic, not part
    of the abstract state ({!to_string} excludes it). *)

val merge : t -> t -> t
(** Union keeping the [k] smallest ranks, counters summed per key.
    Raises [Invalid_argument] unless both sketches share [(k, seed)]. *)

val to_string : t -> string
(** Canonical byte serialization (magic ["BKS1"]; entries in rank
    order).  Ranks are recomputed on load, not stored.  Equal abstract
    states serialize to equal bytes. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on malformed
    input. *)

val decode : string -> (t, string) result
(** Non-raising {!of_string}: malformed input (truncated fields, entry
    count exceeding [k], a key length larger than the bytes that remain)
    returns [Error] with the named reason.  The retained-key table is
    sized by the entries actually present, never by the declared [k]. *)

val digest : t -> string
(** 16-hex fingerprint of {!to_string}. *)
