module Splitmix = Ls_rng.Splitmix
module Metrics = Ls_obs.Metrics

type t = {
  width : int;
  depth : int;
  seed : int64;
  salts : int64 array;
  rows : int array array; (* depth rows of width counters *)
  mutable total : int;
}

(* One salt per row, a pure function of (seed, row): the hash family is
   fixed by the seed alone, so independently created sketches agree on
   where every key lands. *)
let derive_salts ~depth ~seed =
  let base = Splitmix.mix64 seed in
  Array.init depth (fun i ->
      Splitmix.mix64 (Int64.add base (Int64.of_int (i + 1))))

let create ~width ~depth ~seed =
  if width < 1 then invalid_arg "Cms.create: width must be >= 1";
  if depth < 1 then invalid_arg "Cms.create: depth must be >= 1";
  {
    width;
    depth;
    seed;
    salts = derive_salts ~depth ~seed;
    rows = Array.init depth (fun _ -> Array.make width 0);
    total = 0;
  }

let width t = t.width
let depth t = t.depth
let seed t = t.seed
let epsilon t = Float.exp 1. /. float_of_int t.width
let delta t = Float.exp (-.float_of_int t.depth)

(* Coordinate-indexed key hash: a mix64 chain over (salt, length,
   elements).  Folding the length first keeps [|1|] and [|1; 0|] apart. *)
let hash_key salt (key : int array) =
  let h = ref (Splitmix.mix64 (Int64.logxor salt 0x9E3779B97F4A7C15L)) in
  h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int (Array.length key)));
  Array.iter
    (fun c -> h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int c)))
    key;
  !h

let index t row key =
  Int64.to_int
    (Int64.unsigned_rem (hash_key t.salts.(row) key) (Int64.of_int t.width))

let add ?(count = 1) t key =
  if count < 0 then invalid_arg "Cms.add: count must be >= 0";
  for row = 0 to t.depth - 1 do
    let i = index t row key in
    t.rows.(row).(i) <- t.rows.(row).(i) + count
  done;
  t.total <- t.total + count;
  Metrics.record_sketch_add ()

let total t = t.total

let count t key =
  let best = ref max_int in
  for row = 0 to t.depth - 1 do
    let c = t.rows.(row).(index t row key) in
    if c < !best then best := c
  done;
  !best

let compatible a b =
  a.width = b.width && a.depth = b.depth && Int64.equal a.seed b.seed

let merge a b =
  if not (compatible a b) then
    invalid_arg "Cms.merge: incompatible sketches (width/depth/seed must match)";
  let m = create ~width:a.width ~depth:a.depth ~seed:a.seed in
  for row = 0 to m.depth - 1 do
    let ra = a.rows.(row) and rb = b.rows.(row) and rm = m.rows.(row) in
    for i = 0 to m.width - 1 do
      rm.(i) <- ra.(i) + rb.(i)
    done
  done;
  m.total <- a.total + b.total;
  Metrics.record_sketch_merge ();
  m

let magic = "CMS1"

let to_string t =
  let buf = Buffer.create ((t.width * t.depth * 8) + 64) in
  Buffer.add_string buf magic;
  Codec.add_int buf t.width;
  Codec.add_int buf t.depth;
  Codec.add_i64 buf t.seed;
  Codec.add_int buf t.total;
  Array.iter (fun row -> Array.iter (Codec.add_int buf) row) t.rows;
  Buffer.contents buf

let decode s =
  try
    let cur = ref 0 in
    Codec.check_magic s cur magic;
    let width = Codec.get_int s cur in
    let depth = Codec.get_int s cur in
    let seed = Codec.get_i64 s cur in
    let total = Codec.get_int s cur in
    if width < 1 || depth < 1 then
      invalid_arg "Cms.of_string: width and depth must be >= 1";
    if total < 0 then invalid_arg "Cms.of_string: negative total";
    (* The declared width x depth table must actually be present before
       any allocation is sized by it: a crafted header cannot force a
       giant table out of a short string.  (Divide, don't multiply —
       width * depth * 8 could overflow.) *)
    let rem = Codec.remaining s cur in
    if depth > rem / 8 || width > rem / (8 * depth) then
      invalid_arg "Cms.of_string: declared table exceeds remaining bytes";
    let t = create ~width ~depth ~seed in
    for row = 0 to depth - 1 do
      for i = 0 to width - 1 do
        t.rows.(row).(i) <- Codec.get_int s cur
      done
    done;
    if !cur <> String.length s then
      invalid_arg "Cms.of_string: trailing bytes after table";
    t.total <- total;
    Ok t
  with Invalid_argument msg -> Error msg

let of_string s =
  match decode s with Ok t -> t | Error msg -> invalid_arg msg

let digest t = Codec.digest (to_string t)
