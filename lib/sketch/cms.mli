(** Count-min sketch over configuration keys.

    A [depth × width] counter matrix estimating the multiplicity of every
    key (a configuration, [int array]) ever added, in [O(width · depth)]
    memory regardless of how many items stream through.  Each of the
    [depth] rows hashes the key with its own salt and bumps one counter;
    a point query reads the minimum across rows.

    {2 Determinism and the merge monoid}

    The hash family is derived {e deterministically} from the [seed]
    (SplitMix64 finalizer chains, one salt per row — never from a stream
    position), so a key lands in the same cells no matter which domain,
    shard, or chunk processes it.  Two sketches built from the same
    [(width, depth, seed)] are therefore {b mergeable}: {!merge} is
    pointwise counter addition — commutative and associative, with the
    empty sketch ({!create}) as identity — and adding items commutes with
    merging ([add]-then-[merge] ≡ [merge]-then-[add]).  The table contents
    are a pure function of the {e multiset} of added keys, independent of
    arrival order and of how the stream was split across sketches, which
    is what lets {!Ls_par.Par.fold_trials} reduce per-chunk sketches into
    a byte-identical result at every domain count.

    {2 Accuracy (the ε–δ contract)}

    With [N = total] items, a point query {e never underestimates} (hard
    invariant: the true count is in every cell the key touches), and for
    each key the overestimate exceeds [ε·N] with probability at most [δ],
    where [ε = e/width] and [δ = e^(-depth)] (Cormode–Muthukrishnan).
    Bench E15 measures both sides against exact histograms. *)

type t

val create : width:int -> depth:int -> seed:int64 -> t
(** Fresh empty sketch — the identity of {!merge} for its
    [(width, depth, seed)] family.  Both dimensions must be ≥ 1. *)

val width : t -> int
val depth : t -> int
val seed : t -> int64

val epsilon : t -> float
(** The guarantee's additive-error factor, [e / width]. *)

val delta : t -> float
(** The guarantee's per-key failure probability, [e^(-depth)]. *)

val add : ?count:int -> t -> int array -> unit
(** Record [count] (default 1, must be ≥ 0) occurrences of a key.  The
    key is hashed, never stored — the sketch holds no reference to it. *)

val total : t -> int
(** Number of items recorded (the [N] of the ε–δ bound). *)

val count : t -> int array -> int
(** Estimated multiplicity: an upper bound on the true count, within
    [ε·N] of it with probability ≥ 1 − δ. *)

val merge : t -> t -> t
(** Pointwise sum.  Raises [Invalid_argument] unless both sketches share
    [(width, depth, seed)] — sketches from different hash families do not
    speak about the same cells. *)

val to_string : t -> string
(** Canonical byte serialization (magic ["CMS1"], little-endian 64-bit
    fields, row-major counters).  Equal sketches serialize to equal
    bytes — the CI determinism diffs compare exactly this. *)

val of_string : string -> t
(** Inverse of {!to_string}; raises [Invalid_argument] on malformed
    input. *)

val decode : string -> (t, string) result
(** Non-raising {!of_string}: truncated, oversized, bad-magic, or
    trailing-byte input returns [Error] with the named reason, and no
    allocation is ever sized by an unvalidated length prefix.  This is
    the entry point for bytes that crossed a process or file boundary. *)

val digest : t -> string
(** 16-hex fingerprint of {!to_string}, for table cells and logs. *)
