module Splitmix = Ls_rng.Splitmix

let add_i64 = Buffer.add_int64_le
let add_int buf n = add_i64 buf (Int64.of_int n)

let get_i64 s cur =
  if !cur + 8 > String.length s then
    invalid_arg "Sketch codec: truncated serialization";
  let v = String.get_int64_le s !cur in
  cur := !cur + 8;
  v

let get_int s cur =
  let v = get_i64 s cur in
  let n = Int64.to_int v in
  if Int64.of_int n <> v then invalid_arg "Sketch codec: field exceeds int";
  n

let check_magic s cur magic =
  let l = String.length magic in
  if
    !cur + l > String.length s
    || String.sub s !cur l <> magic
  then invalid_arg (Printf.sprintf "Sketch codec: expected %S header" magic);
  cur := !cur + l

(* Result-returning readers for decoders that must never raise (the
   hardened [decode] entry points and the shard frame/checkpoint codecs).
   Same wire format and error wording as the raising readers above. *)
let read_i64 s cur =
  if !cur + 8 > String.length s then
    Error "Sketch codec: truncated serialization"
  else begin
    let v = String.get_int64_le s !cur in
    cur := !cur + 8;
    Ok v
  end

let read_int s cur =
  match read_i64 s cur with
  | Error _ as e -> e
  | Ok v ->
      let n = Int64.to_int v in
      if Int64.of_int n <> v then Error "Sketch codec: field exceeds int"
      else Ok n

let read_magic s cur magic =
  let l = String.length magic in
  if !cur + l > String.length s || String.sub s !cur l <> magic then
    Error (Printf.sprintf "Sketch codec: expected %S header" magic)
  else begin
    cur := !cur + l;
    Ok ()
  end

let remaining s cur = String.length s - !cur

let digest s =
  let h = ref 0x5345454BL in
  String.iter
    (fun c ->
      h := Splitmix.mix64 (Int64.logxor !h (Int64.of_int (Char.code c))))
    s;
  Printf.sprintf "%016Lx" !h
