(** Shared wire helpers for the sketch serializations.

    Every sketch serializes to a canonical byte string — little-endian
    64-bit fields behind a 4-byte magic — so that "two sketches are equal"
    can be checked (and CI-diffed) as byte equality.  The encoders write
    through a [Buffer]; the decoders read through a mutable cursor and
    raise [Invalid_argument] on malformed input, naming the magic they
    expected. *)

val add_i64 : Buffer.t -> int64 -> unit
(** Append one little-endian 64-bit field. *)

val add_int : Buffer.t -> int -> unit
(** Append an OCaml [int] as a 64-bit field. *)

val get_i64 : string -> int ref -> int64
(** Read one 64-bit field at the cursor and advance it. *)

val get_int : string -> int ref -> int
(** {!get_i64} narrowed to [int]; raises [Invalid_argument] if the field
    does not fit. *)

val check_magic : string -> int ref -> string -> unit
(** [check_magic s cur magic] consumes [magic] at the cursor or raises
    [Invalid_argument] naming the expected magic. *)

(** {1 Non-raising readers}

    The same wire format through [result]: what the hardened sketch
    [decode] functions and the {!Ls_shard} frame/checkpoint codecs build
    on, so malformed bytes from a socket or a torn file surface as a
    named [Error], never an exception — and never an allocation sized by
    an unvalidated length prefix (callers check {!remaining} first). *)

val read_i64 : string -> int ref -> (int64, string) result
val read_int : string -> int ref -> (int, string) result
val read_magic : string -> int ref -> string -> (unit, string) result
val remaining : string -> int ref -> int
(** Bytes left after the cursor — the bound every length-prefixed
    allocation must be validated against before it happens. *)

val digest : string -> string
(** 16-hex-digit digest of a byte string (a SplitMix64 fold): the
    fingerprint the benches print so a stdout diff across domain counts
    certifies byte-identical sketches without dumping kilobytes. *)
