(* The asynchronous executor's contracts.

   Synchronizer mode: under arbitrary delay laws and clock skew, node
   states, every network meter, and the payload trace stream are
   bit-identical to the synchronous executor — checked across fault
   plans that exercise drops, duplication, delays (with cross-phase
   carry), corruption + quarantine, partitions, and crash-recovery.

   Adaptive mode: never a wrong answer.  Views are subsets of the
   synchronous ones (truthful records only), loss surfaces as
   incompleteness, and the conservation identity
   messages = delivered + pending + quarantined + dead letters
   holds throughout and at teardown (the finish regression). *)

module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Generators = Ls_graph.Generators
module Graph = Ls_graph.Graph
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Async = Ls_local.Async

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* A view, reduced to its observable content (the subgraph and hashtable
   are derived from these). *)
let view_repr (v : _ Network.view) =
  (v.Network.center, v.Network.radius, v.Network.vertices, v.Network.dist_center)

let meters net =
  ( Network.messages net,
    Network.bits net,
    Network.delivered_count net,
    Network.dead_letter_count net,
    Network.quarantined_count net,
    Network.pending_count net,
    Network.rounds net,
    Network.clock net )

let conserved net =
  Network.messages net
  = Network.delivered_count net + Network.pending_count net
    + Network.quarantined_count net + Network.dead_letter_count net

(* Fault plans covering every mechanism, combined with each timing law
   and a spread of skews.  Rates are high on purpose: empty-fate plans
   would make the bit-identity check vacuous. *)
let plans =
  [
    ("lossy-uniform", Faults.make ~seed:101L ~drop:0.25 ~duplicate:0.2 ());
    ( "delay-exp",
      Faults.make ~seed:102L ~delay:0.5 ~max_delay:4 ~law:Faults.Exponential () );
    ( "delay-heavy-skew",
      Faults.make ~seed:103L ~drop:0.1 ~delay:0.4 ~max_delay:3 ~law:Faults.Heavy
        ~skew:0.5 ~reorder:0.2 () );
    ( "corrupt",
      Faults.make ~seed:104L ~corrupt:0.3 ~duplicate:0.15 ~skew:0.25 () );
    ( "crash-recovery",
      Faults.make ~seed:105L ~crash:0.3 ~crash_horizon:5 ~recovery:0.7
        ~recovery_delay:2 ~drop:0.15 ~delay:0.3 ~max_delay:3 () );
    ( "partitioned",
      Faults.make ~seed:106L
        ~partitions:[ (2, 4, 2) ]
        ~drop:0.1 ~law:Faults.Exponential ~skew:1.0 () );
  ]

let graphs = [ ("cycle12", Generators.cycle 12); ("grid4x4", Generators.grid 4 4) ]

(* One flood, then a second one on the same network: the second exercises
   cross-phase carry of delayed copies, the trickiest ordering contract. *)
let run_floods ~async net =
  let t = Trace.make () in
  let views1 =
    match async with
    | None -> Network.flood_views ~trace:t net ~radius:2
    | Some cfg -> Async.flood_views cfg ~trace:t net ~radius:2
  in
  let views2 =
    match async with
    | None -> Network.flood_views ~trace:t net ~radius:3
    | Some cfg -> Async.flood_views cfg ~trace:t net ~radius:3
  in
  (Array.map view_repr views1, Array.map view_repr views2, Trace.events t)

let test_synchronizer_bit_identity () =
  List.iter
    (fun (gname, g) ->
      List.iter
        (fun (pname, faults) ->
          let inputs = Array.make (Graph.n g) () in
          let mk () = Network.create ~faults g ~inputs ~seed:9L in
          let net_s = mk () and net_a = mk () in
          let v1s, v2s, ev_s = run_floods ~async:None net_s in
          let cfg = Async.make ~mode:Async.Synchronizer () in
          let v1a, v2a, ev_a = run_floods ~async:(Some cfg) net_a in
          let tag = gname ^ "/" ^ pname in
          checkb (tag ^ ": first-flood views identical") true (v1s = v1a);
          checkb (tag ^ ": second-flood (carry) views identical") true (v2s = v2a);
          checkb (tag ^ ": meters identical") true (meters net_s = meters net_a);
          checkb (tag ^ ": payload traces byte-identical") true (ev_s = ev_a);
          checkb (tag ^ ": conservation (sync)") true (conserved net_s);
          checkb (tag ^ ": conservation (async)") true (conserved net_a))
        plans)
    graphs

let test_synchronizer_zero_faults_matches_pristine () =
  (* Timing-only plans (is_none true): the sync dispatcher takes its
     pristine fast path; the event engine must reproduce it exactly. *)
  let g = Generators.cycle 10 in
  let faults = Faults.make ~seed:42L ~law:Faults.Heavy ~skew:2.0 ~reorder:0.3 () in
  checkb "timing-only plan counts as no faults" true (Faults.is_none faults);
  let inputs = Array.make 10 () in
  let net_s = Network.create ~faults g ~inputs ~seed:3L in
  let net_a = Network.create ~faults g ~inputs ~seed:3L in
  let v1s, v2s, ev_s = run_floods ~async:None net_s in
  let cfg = Async.make () in
  let v1a, v2a, ev_a = run_floods ~async:(Some cfg) net_a in
  checkb "views identical" true (v1s = v1a && v2s = v2a);
  checkb "meters identical" true (meters net_s = meters net_a);
  checkb "traces identical" true (ev_s = ev_a)

let test_async_deterministic () =
  (* The simulation is a pure function of the seeds: repeated runs agree
     event for event, in both modes. *)
  List.iter
    (fun mode ->
      let run () =
        let faults =
          Faults.make ~seed:77L ~drop:0.2 ~delay:0.3 ~max_delay:3
            ~law:Faults.Exponential ~skew:0.8 ()
        in
        let net =
          Network.create ~faults (Generators.cycle 10) ~inputs:(Array.make 10 ())
            ~seed:8L
        in
        let ctl = Trace.make () in
        let cfg = Async.make ~mode ~control_trace:ctl () in
        let t = Trace.make () in
        let views = Async.flood_views cfg ~trace:t net ~radius:2 in
        (Array.map view_repr views, meters net, Trace.events t, Trace.events ctl,
         Async.stats cfg)
      in
      checkb
        (Async.mode_name mode ^ " rerun is event-for-event identical")
        true
        (run () = run ()))
    [ Async.Synchronizer; Async.Adaptive ]

let test_adaptive_soundness () =
  (* Adaptive floods may lose information but never invent it: every
     record a node holds belongs to its true radius-2 ball (it may hold
     MORE than the faulty synchronous run — retransmissions recover
     drops — but never an untruthful record), distance estimates never
     undershoot the truth, and conservation holds throughout. *)
  let g = Generators.grid 4 4 in
  let n = Graph.n g in
  List.iter
    (fun (pname, faults) ->
      let inputs = Array.make n () in
      let net_a = Network.create ~faults g ~inputs ~seed:5L in
      let cfg =
        Async.make ~mode:Async.Adaptive ~timeout_base:0.5 ~max_retransmits:1 ()
      in
      let views_a = Async.flood_views cfg ~trace:(Trace.make ()) net_a ~radius:2 in
      Array.iteri
        (fun v (va : _ Network.view) ->
          let true_ball = Graph.ball g v 2 in
          let true_dist = Graph.bfs_distances g v in
          let in_ball u = Array.exists (fun w -> w = u) true_ball in
          checkb
            (pname ^ ": adaptive view is a subset of the true ball")
            true
            (Array.for_all in_ball va.Network.vertices);
          checkb
            (pname ^ ": flooded distances never undershoot the truth")
            true
            (Array.for_all2
               (fun o d -> d >= true_dist.(o))
               va.Network.vertices va.Network.dist_center))
        views_a;
      checkb (pname ^ ": conservation under adaptive execution") true
        (conserved net_a))
    plans

let test_adaptive_timeouts_fire_and_recover () =
  (* A seriously lossy link forces the timeout/nack/retransmit path; with
     a generous retry cap the flood should still complete most views, and
     the stats must show the machinery actually ran. *)
  let g = Generators.cycle 8 in
  let faults = Faults.make ~seed:31L ~drop:0.3 () in
  let net = Network.create ~faults g ~inputs:(Array.make 8 ()) ~seed:4L in
  let cfg =
    Async.make ~mode:Async.Adaptive ~timeout_base:2.0 ~max_retransmits:8 ()
  in
  let views = Async.flood_views cfg net ~radius:2 in
  let st = Async.stats cfg in
  checkb "timeouts fired" true (st.Async.timeouts > 0);
  checkb "retransmissions hit the wire" true (st.Async.retransmits > 0);
  checkb "conservation holds" true (conserved net);
  (* Retransmissions recover what first transmissions lost: with drop 0.3
     and 4 retries, completing every view is overwhelmingly likely. *)
  let complete =
    Array.for_all (fun v -> Network.view_is_complete net v) views
  in
  checkb "retransmissions recovered all views" true complete

let test_control_plane_separation () =
  (* With a control sink attached, protocol events (acks, barriers) land
     there — and only there: the payload stream must stay byte-identical
     to a run without any control sink. *)
  let run ctl =
    let faults = Faults.make ~seed:61L ~drop:0.2 ~delay:0.3 ~max_delay:2 () in
    let net =
      Network.create ~faults (Generators.cycle 9) ~inputs:(Array.make 9 ())
        ~seed:2L
    in
    let cfg = Async.make ?control_trace:ctl () in
    let t = Trace.make () in
    ignore (Async.flood_views cfg ~trace:t net ~radius:2);
    Trace.events t
  in
  let ctl = Trace.make () in
  let with_ctl = run (Some ctl) and without = run None in
  checkb "payload stream unchanged by the control sink" true (with_ctl = without);
  let count p = List.length (List.filter p (Trace.events ctl)) in
  checkb "acks reached the control sink" true
    (count (function Trace.Ack _ -> true | _ -> false) > 0);
  checkb "barriers reached the control sink" true
    (count (function Trace.Barrier _ -> true | _ -> false) > 0);
  checkb "no payload events leaked into the control sink" true
    (count (function
       | Trace.Ack _ | Trace.Barrier _ | Trace.Timeout _ | Trace.Skew _ -> false
       | _ -> true)
    = 0)

let test_async_metrics_recorded () =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
  @@ fun () ->
  Metrics.reset ();
  let faults = Faults.make ~seed:71L ~drop:0.25 ~law:Faults.Exponential () in
  let net =
    Network.create ~faults (Generators.cycle 8) ~inputs:(Array.make 8 ()) ~seed:1L
  in
  let cfg = Async.make ~mode:Async.Adaptive ~timeout_base:1.0 () in
  ignore (Async.flood_views cfg net ~radius:2);
  let s = Metrics.snapshot () in
  let st = Async.stats cfg in
  checki "timeout metric matches stats" st.Async.timeouts s.Metrics.timeouts;
  checki "retransmit metric matches stats" st.Async.retransmits s.Metrics.retransmits;
  checki "barrier metric matches stats" st.Async.barriers s.Metrics.barriers;
  checki "control metric matches stats" st.Async.control_msgs s.Metrics.control_msgs;
  checkb "latency histogram populated" true
    (Array.fold_left ( + ) 0 s.Metrics.latency_hist > 0)

let test_finish_teardown_accounting () =
  (* Satellite regression: a delay-heavy plan strands copies past the last
     phase's end; finish must migrate them to dead letters so conservation
     holds at teardown with pending = 0.  And finish is idempotent. *)
  let faults = Faults.make ~seed:81L ~delay:0.8 ~max_delay:6 () in
  let net =
    Network.create ~faults (Generators.cycle 10) ~inputs:(Array.make 10 ())
      ~seed:7L
  in
  ignore (Network.flood_views net ~radius:2);
  checkb "the plan strands copies past the phase end" true
    (Network.pending_count net > 0);
  checkb "conservation holds before teardown" true (conserved net);
  let stranded = Network.pending_count net in
  let dead0 = Network.dead_letter_count net in
  Network.finish net;
  checki "teardown leaves no pending copies" 0 (Network.pending_count net);
  checki "stranded copies became dead letters" (dead0 + stranded)
    (Network.dead_letter_count net);
  checkb "conservation holds at teardown" true (conserved net);
  Network.finish net;
  checki "finish is idempotent" (dead0 + stranded) (Network.dead_letter_count net)

let suite =
  [
    Alcotest.test_case "synchronizer bit-identity across plans and laws" `Quick
      test_synchronizer_bit_identity;
    Alcotest.test_case "synchronizer matches pristine fast path" `Quick
      test_synchronizer_zero_faults_matches_pristine;
    Alcotest.test_case "async executor is deterministic" `Quick
      test_async_deterministic;
    Alcotest.test_case "adaptive mode never invents records" `Quick
      test_adaptive_soundness;
    Alcotest.test_case "adaptive timeouts fire and recover" `Quick
      test_adaptive_timeouts_fire_and_recover;
    Alcotest.test_case "control plane never touches the payload trace" `Quick
      test_control_plane_separation;
    Alcotest.test_case "async metrics agree with executor stats" `Quick
      test_async_metrics_recorded;
    Alcotest.test_case "finish migrates stranded copies to dead letters" `Quick
      test_finish_teardown_accounting;
  ]
