(* The chaos harness itself.

   The harness is the robustness layer's own test rig, so these tests play
   both sides: on the healthy runtime every generated schedule must pass
   the invariant suite, and when we plant a seeded "failure" through the
   injected-check hook the harness must catch it, shrink it to a minimal
   schedule, and replay the whole run bit-identically from its seed. *)

module Chaos = Ls_chaos.Chaos

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_healthy_runtime_passes () =
  let s = Chaos.run ~schedules:4 ~trials:50 ~seed:2026L () in
  checkb "zero-fault identity holds" true (s.Chaos.zero_fault = None);
  checkb "every schedule passes the invariant suite" true (Chaos.ok s);
  checki "schedules recorded" 4 s.Chaos.schedules;
  checkb "the report says so" true
    (contains (Chaos.reproducer s) "all invariants held")

let test_quiet_spec_passes () =
  checkb "the zero-fault schedule trivially passes" true
    (Chaos.run_spec ~trials:30 (Chaos.quiet 5L) = [])

let test_replay_is_deterministic () =
  let a = Chaos.run ~schedules:3 ~trials:40 ~seed:7L () in
  let b = Chaos.run ~schedules:3 ~trials:40 ~seed:7L () in
  checkb "whole summaries bit-identical" true (a = b)

let test_injected_failure_is_caught_and_shrunk () =
  (* Plant a "bug" that fires whenever a schedule combines a positive drop
     rate with a partition interval.  The harness must catch it, and the
     shrinker must strip every irrelevant dimension while keeping the two
     that matter. *)
  let check spec =
    if spec.Chaos.drop > 0. && spec.Chaos.partitions <> [] then
      Some { Chaos.invariant = "injected"; detail = "drop with partition" }
    else None
  in
  let s = Chaos.run ~check ~schedules:8 ~trials:10 ~seed:2026L () in
  checkb "some schedule trips the planted bug" true (not (Chaos.ok s));
  List.iter
    (fun f ->
      checkb "the original violation is recorded" true
        (f.Chaos.f_violations <> []);
      checkb "the shrunk schedule still fails" true
        (f.Chaos.f_shrunk_violations <> []);
      let m = f.Chaos.f_shrunk in
      checkb "shrunk keeps a positive drop" true (m.Chaos.drop > 0.);
      checki "shrunk keeps exactly one partition" 1
        (List.length m.Chaos.partitions);
      checkb "every irrelevant rate zeroed" true
        (m.Chaos.duplicate = 0. && m.Chaos.delay = 0. && m.Chaos.crash = 0.
        && m.Chaos.recovery = 0. && m.Chaos.corrupt = 0.
        && m.Chaos.bursts = []);
      checkb "timing dimensions stripped too" true
        (m.Chaos.skew = 0. && m.Chaos.reorder = 0.
        && m.Chaos.law = Ls_local.Faults.Uniform);
      checki "delay bound collapsed" 1 m.Chaos.max_delay)
    s.Chaos.failures;
  let r = Chaos.reproducer s in
  checkb "reproducer names the violated invariant" true
    (contains r "injected");
  checkb "reproducer ends in the replay line" true
    (contains r
       "replay: locsample chaos --seed 2026 --schedules 8 --chaos-trials 10");
  (* And the replay line is honest: the same parameters reproduce the same
     failures, indices and shrunk forms included. *)
  let s' = Chaos.run ~check ~schedules:8 ~trials:10 ~seed:2026L () in
  checkb "replaying reproduces the failures exactly" true
    (s.Chaos.failures = s'.Chaos.failures)

let test_shrink_is_identity_on_passing_specs () =
  let spec = Chaos.quiet 9L in
  checkb "nothing to shrink on a passing schedule" true
    (Chaos.shrink ~trials:20 spec = spec)

let test_async_executors_pass_the_suite () =
  (* The tentpole's two modes, end to end under random schedules: the
     synchronizer must be invisible (identity invariant) and the adaptive
     executor must keep every Las Vegas invariant — misfired timeouts cost
     retries, never exactness. *)
  let sync = Chaos.run ~overrides:{ Chaos.no_overrides with o_async = Some "synchronizer" }
      ~schedules:3 ~trials:40 ~seed:2027L ()
  in
  checkb "synchronizer mode passes every invariant" true (Chaos.ok sync);
  let adaptive =
    Chaos.run ~overrides:{ Chaos.no_overrides with o_async = Some "adaptive" }
      ~schedules:3 ~trials:40 ~seed:2028L ()
  in
  checkb "adaptive mode passes every invariant" true (Chaos.ok adaptive)

let test_reproducer_round_trip () =
  (* Satellite: the replay line carries the whole flag surface, and
     parsing it back then re-running yields the identical violations. *)
  let overrides =
    {
      Chaos.o_async = Some "synchronizer";
      o_max_delay = Some 3;
      o_corrupt = Some 0.02;
      o_profile = Some "lossy";
      o_partitions = [ (1, 4, 2); (6, 8, 3) ];
      o_shards = None;
    }
  in
  let check spec =
    if spec.Chaos.drop > 0. then
      Some { Chaos.invariant = "injected"; detail = "any loss at all" }
    else None
  in
  let s = Chaos.run ~check ~overrides ~schedules:2 ~trials:10 ~seed:77L () in
  checkb "the planted bug fires under the lossy profile" true
    (not (Chaos.ok s));
  let text = Chaos.reproducer s in
  checkb "replay line carries every override flag" true
    (contains text
       "--async synchronizer --max-delay 3 --corrupt-rate 0.02 \
        --fault-profile lossy --partition 1:4:2 --partition 6:8:3");
  (match Chaos.parse_reproducer text with
  | None -> Alcotest.fail "reproducer did not parse"
  | Some (seed, schedules, trials, o) ->
      checkb "seed round-trips" true (seed = 77L);
      checki "schedules round-trip" 2 schedules;
      checki "trials round-trip" 10 trials;
      checkb "overrides round-trip" true (o = overrides);
      let s' = Chaos.run ~check ~overrides:o ~schedules ~trials ~seed () in
      checkb "re-running the parsed line reproduces the violations" true
        (s'.Chaos.failures = s.Chaos.failures
        && s'.Chaos.zero_fault = s.Chaos.zero_fault));
  checkb "junk text does not parse" true
    (Chaos.parse_reproducer "no replay line here" = None)

let suite =
  [
    Alcotest.test_case "healthy runtime passes the suite" `Slow
      test_healthy_runtime_passes;
    Alcotest.test_case "quiet spec passes" `Quick test_quiet_spec_passes;
    Alcotest.test_case "replay is deterministic" `Slow
      test_replay_is_deterministic;
    Alcotest.test_case "injected failure caught and shrunk" `Quick
      test_injected_failure_is_caught_and_shrunk;
    Alcotest.test_case "shrink is identity on passing specs" `Quick
      test_shrink_is_identity_on_passing_specs;
    Alcotest.test_case "async executors pass the suite" `Slow
      test_async_executors_pass_the_suite;
    Alcotest.test_case "reproducer round-trips through its replay line"
      `Quick test_reproducer_round_trip;
  ]
