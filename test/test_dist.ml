(* Tests for finite distributions, TV distance, multiplicative error, and
   empirical distributions. *)

module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng

let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-12) msg

let test_of_weights () =
  let d = Dist.of_weights [| 1.; 3. |] in
  checkf "p0" 0.25 (Dist.prob d 0);
  checkf "p1" 0.75 (Dist.prob d 1);
  checkb "normalized" true (Dist.is_normalized d)

let test_of_weights_invalid () =
  Alcotest.check_raises "all zero"
    (Invalid_argument "Dist.of_weights: weights sum to zero") (fun () ->
      ignore (Dist.of_weights [| 0.; 0. |]));
  Alcotest.check_raises "negative"
    (Invalid_argument "Dist.of_weights: negative or NaN weight") (fun () ->
      ignore (Dist.of_weights [| 1.; -1. |]))

let test_uniform_point () =
  let u = Dist.uniform 4 in
  for c = 0 to 3 do
    checkf "uniform" 0.25 (Dist.prob u c)
  done;
  let p = Dist.point 4 2 in
  checkf "point mass" 1. (Dist.prob p 2);
  checkf "elsewhere" 0. (Dist.prob p 0);
  Alcotest.check Alcotest.int "support" 1 (Dist.support_size p)

let test_tv_basic () =
  let a = Dist.of_weights [| 1.; 1. |] and b = Dist.of_weights [| 1.; 0. |] in
  checkf "tv half" 0.5 (Dist.tv a b);
  checkf "tv self" 0. (Dist.tv a a);
  let p0 = Dist.point 2 0 and p1 = Dist.point 2 1 in
  checkf "tv disjoint" 1. (Dist.tv p0 p1)

let test_tv_symmetry_triangle () =
  let rng = Rng.create 7L in
  for _i = 1 to 200 do
    let mk () = Dist.of_weights (Array.init 5 (fun _ -> Rng.float rng +. 0.01)) in
    let a = mk () and b = mk () and c = mk () in
    checkb "symmetry" true (Float.abs (Dist.tv a b -. Dist.tv b a) < 1e-12);
    checkb "triangle" true (Dist.tv a c <= Dist.tv a b +. Dist.tv b c +. 1e-12);
    checkb "range" true (Dist.tv a b >= 0. && Dist.tv a b <= 1.)
  done

let test_mult_err () =
  let a = Dist.of_weights [| 1.; 1. |] in
  let b = Dist.of_weights [| 1.; Float.exp 0.1 |] in
  (* b = (1/(1+e^.1), e^.1/(1+e^.1)); ratios: ln differences bounded. *)
  checkb "finite" true (Dist.mult_err a b < 0.2);
  checkf "self" 0. (Dist.mult_err a a);
  let p = Dist.point 2 0 and u = Dist.uniform 2 in
  checkb "zero vs nonzero is infinite" true (Dist.mult_err p u = infinity);
  let q = Dist.point 2 0 in
  checkb "matching zeros are fine (0/0 = 1)" true (Dist.mult_err p q = 0.)

let test_mult_err_dominates_tv () =
  (* err <= eps implies tv <= (e^eps - 1)/2-ish; sanity: small err, small tv. *)
  let a = Dist.of_weights [| 0.5; 0.5 |] in
  let b = Dist.of_weights [| 0.5 *. exp 0.01; 0.5 |] in
  checkb "small" true (Dist.tv a b <= Dist.mult_err a b)

let test_argmax () =
  Alcotest.check Alcotest.int "argmax" 1 (Dist.argmax (Dist.of_weights [| 1.; 5.; 3. |]));
  Alcotest.check Alcotest.int "ties smallest" 0
    (Dist.argmax (Dist.of_weights [| 2.; 2. |]))

let test_mix () =
  let a = Dist.point 2 0 and b = Dist.point 2 1 in
  let m = Dist.mix 0.25 a b in
  checkf "mix0" 0.25 (Dist.prob m 0);
  checkf "mix1" 0.75 (Dist.prob m 1)

let test_sample_frequencies () =
  let rng = Rng.create 13L in
  let d = Dist.of_weights [| 0.2; 0.5; 0.3 |] in
  let counts = Array.make 3 0 in
  let n = 60_000 in
  for _i = 1 to n do
    let c = Dist.sample rng d in
    counts.(c) <- counts.(c) + 1
  done;
  Array.iteri
    (fun c k ->
      let f = float_of_int k /. float_of_int n in
      checkb "frequency" true (Float.abs (f -. Dist.prob d c) < 0.01))
    counts

let test_empirical_basic () =
  let e = Empirical.create () in
  Empirical.add e [| 0; 1 |];
  Empirical.add e [| 0; 1 |];
  Empirical.add e [| 1; 0 |];
  Alcotest.check Alcotest.int "total" 3 (Empirical.total e);
  Alcotest.check Alcotest.int "count" 2 (Empirical.count e [| 0; 1 |]);
  Alcotest.check Alcotest.int "distinct" 2 (Empirical.distinct e);
  checkb "freq" true (Float.abs (Empirical.freq e [| 1; 0 |] -. (1. /. 3.)) < 1e-12)

let test_empirical_copies () =
  let e = Empirical.create () in
  let a = [| 0; 0 |] in
  Empirical.add e a;
  a.(0) <- 1;
  Alcotest.check Alcotest.int "copied on add" 1 (Empirical.count e [| 0; 0 |])

let test_empirical_tv () =
  let e = Empirical.create () in
  Empirical.add e [| 0 |];
  Empirical.add e [| 1 |];
  let exact = [ ([| 0 |], 0.5); ([| 1 |], 0.5) ] in
  checkb "tv zero" true (Empirical.tv_against e exact < 1e-12);
  let skewed = [ ([| 0 |], 1.0); ([| 1 |], 0.0) ] in
  checkb "tv half" true (Float.abs (Empirical.tv_against e skewed -. 0.5) < 1e-12)

let test_empirical_off_support () =
  let e = Empirical.create () in
  Empirical.add e [| 7 |];
  let exact = [ ([| 0 |], 1.0) ] in
  checkb "full mass off support" true
    (Float.abs (Empirical.tv_against e exact -. 1.0) < 1e-12);
  checkb "chi-square infinite" true (Empirical.chi_square e exact = infinity)

let test_empirical_converges () =
  let rng = Rng.create 21L in
  let d = Dist.of_weights [| 1.; 2.; 3. |] in
  let e = Empirical.create () in
  for _i = 1 to 30_000 do
    Empirical.add e [| Dist.sample rng d |]
  done;
  let exact = List.init 3 (fun c -> ([| c |], Dist.prob d c)) in
  checkb "empirical close to exact" true (Empirical.tv_against e exact < 0.01)

let test_empirical_empty () =
  (* Edge cases pinned down: an empty multiset answers every query with
     zero and keeps the TV helpers finite. *)
  let e = Empirical.create () in
  Alcotest.check Alcotest.int "total" 0 (Empirical.total e);
  Alcotest.check Alcotest.int "count" 0 (Empirical.count e [| 0 |]);
  Alcotest.check Alcotest.int "distinct" 0 (Empirical.distinct e);
  checkf "freq is 0, not NaN" 0. (Empirical.freq e [| 0 |]);
  (* tv_against an exact point mass: the max(total,1) guard makes the
     empty empirical behave as all-zero frequencies, so TV = 1/2·Σ|0−p|. *)
  checkf "tv vs point mass" 0.5 (Empirical.tv_against e [ ([| 0 |], 1.0) ]);
  checkf "chi-square is 0 on no observations" 0.
    (Empirical.chi_square e [ ([| 0 |], 1.0) ]);
  Array.iter (checkf "marginal all zero" 0.) (Empirical.marginal e ~v:0 ~q:3)

let test_empirical_add_all_empty () =
  let e = Empirical.create () in
  Empirical.add_all e [||];
  Alcotest.check Alcotest.int "no-op batch" 0 (Empirical.total e);
  Empirical.add_all e [| [| 1 |]; [| 1 |] |];
  Alcotest.check Alcotest.int "then a real batch" 2 (Empirical.total e)

let test_empirical_disjoint_support () =
  (* Sampler mass entirely off the exact support: TV must saturate at 1. *)
  let e = Empirical.create () in
  Empirical.add e [| 5 |];
  Empirical.add e [| 6 |];
  let exact = [ ([| 0 |], 0.5); ([| 1 |], 0.5) ] in
  checkf "tv on disjoint support" 1.0 (Empirical.tv_against e exact)

let qcheck_tv_bounds =
  QCheck.Test.make ~name:"tv in [0,1]" ~count:500
    QCheck.(
      pair
        (array_of_size (Gen.return 4) (float_range 0.001 10.))
        (array_of_size (Gen.return 4) (float_range 0.001 10.)))
    (fun (wa, wb) ->
      let a = Dist.of_weights wa and b = Dist.of_weights wb in
      let t = Dist.tv a b in
      t >= 0. && t <= 1. +. 1e-12)

let qcheck_mult_err_vs_tv =
  QCheck.Test.make ~name:"tv <= (e^err - 1) when err finite" ~count:500
    QCheck.(
      pair
        (array_of_size (Gen.return 3) (float_range 0.01 10.))
        (array_of_size (Gen.return 3) (float_range 0.01 10.)))
    (fun (wa, wb) ->
      let a = Dist.of_weights wa and b = Dist.of_weights wb in
      let e = Dist.mult_err a b in
      (* |a(c)-b(c)| <= b(c)(e^err - 1), summing: 2 tv <= e^err - 1. *)
      2. *. Dist.tv a b <= exp e -. 1. +. 1e-9)

let suite =
  [
    Alcotest.test_case "of_weights" `Quick test_of_weights;
    Alcotest.test_case "of_weights invalid" `Quick test_of_weights_invalid;
    Alcotest.test_case "uniform and point" `Quick test_uniform_point;
    Alcotest.test_case "tv basics" `Quick test_tv_basic;
    Alcotest.test_case "tv symmetry+triangle" `Quick test_tv_symmetry_triangle;
    Alcotest.test_case "mult_err" `Quick test_mult_err;
    Alcotest.test_case "mult_err dominates tv" `Quick test_mult_err_dominates_tv;
    Alcotest.test_case "argmax" `Quick test_argmax;
    Alcotest.test_case "mix" `Quick test_mix;
    Alcotest.test_case "sample frequencies" `Quick test_sample_frequencies;
    Alcotest.test_case "empirical basics" `Quick test_empirical_basic;
    Alcotest.test_case "empirical copies keys" `Quick test_empirical_copies;
    Alcotest.test_case "empirical tv" `Quick test_empirical_tv;
    Alcotest.test_case "empirical off-support" `Quick test_empirical_off_support;
    Alcotest.test_case "empirical converges" `Quick test_empirical_converges;
    Alcotest.test_case "empirical empty multiset" `Quick test_empirical_empty;
    Alcotest.test_case "empirical add_all [||]" `Quick
      test_empirical_add_all_empty;
    Alcotest.test_case "empirical disjoint support" `Quick
      test_empirical_disjoint_support;
    QCheck_alcotest.to_alcotest qcheck_tv_bounds;
    QCheck_alcotest.to_alcotest qcheck_mult_err_vs_tv;
  ]
