(* Tests for the LOCAL/SLOCAL runtimes, network decomposition and the
   SLOCAL->LOCAL scheduler. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Rng = Ls_rng.Rng
module Network = Ls_local.Network
module Slocal = Ls_local.Slocal
module Decomposition = Ls_local.Decomposition
module Scheduler = Ls_local.Scheduler

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- Network: gather --- *)

let test_gather_basic () =
  let g = Generators.path 5 in
  let net = Network.create g ~inputs:[| 10; 11; 12; 13; 14 |] ~seed:1L in
  let view = Network.gather net ~v:2 ~radius:1 in
  Alcotest.check (Alcotest.array Alcotest.int) "vertices" [| 1; 2; 3 |]
    view.Network.vertices;
  checki "center local" 1 view.Network.center_local;
  checki "input of center" 12 view.Network.view_inputs.(view.Network.center_local);
  checkb "in view" true (Network.in_view view 1);
  checkb "not in view" false (Network.in_view view 4);
  checki "subgraph edges" 2 (Graph.m view.Network.subgraph)

let test_gather_radius_zero () =
  let g = Generators.cycle 4 in
  let net = Network.create g ~inputs:(Array.make 4 ()) ~seed:2L in
  let view = Network.gather net ~v:0 ~radius:0 in
  checki "only self" 1 (Array.length view.Network.vertices)

let test_rounds_accounting () =
  let g = Generators.cycle 4 in
  let net = Network.create g ~inputs:(Array.make 4 ()) ~seed:3L in
  checki "zero initially" 0 (Network.rounds net);
  Network.charge net 3;
  Network.charge net 2;
  checki "accumulates" 5 (Network.rounds net);
  Network.reset_rounds net;
  checki "reset" 0 (Network.rounds net)

let test_node_rngs_independent () =
  let g = Generators.path 3 in
  let net = Network.create g ~inputs:(Array.make 3 ()) ~seed:4L in
  let a = Rng.float (Network.rng net 0) and b = Rng.float (Network.rng net 1) in
  checkb "different streams" true (a <> b)

(* --- Network: genuine message passing vs gather --- *)

let views_equal (a : 'i Network.view) (b : 'i Network.view) =
  a.Network.vertices = b.Network.vertices
  && Graph.edges a.Network.subgraph = Graph.edges b.Network.subgraph
  && a.Network.view_inputs = b.Network.view_inputs
  && a.Network.dist_center = b.Network.dist_center
  && a.Network.center_local = b.Network.center_local

let test_flood_matches_gather () =
  let rng = Rng.create 5L in
  List.iter
    (fun g ->
      let n = Graph.n g in
      let inputs = Array.init n (fun v -> v * 7) in
      let net = Network.create g ~inputs ~seed:6L in
      List.iter
        (fun radius ->
          let flooded = Network.flood_views net ~radius in
          for v = 0 to n - 1 do
            let direct = Network.gather net ~v ~radius in
            checkb "flooded view equals direct gather" true
              (views_equal flooded.(v) direct)
          done)
        [ 0; 1; 2; 3 ])
    [
      Generators.path 6;
      Generators.cycle 7;
      Generators.grid 3 3;
      Generators.erdos_renyi rng ~n:10 ~p:0.3;
    ]

let test_broadcast_counts_rounds () =
  let g = Generators.cycle 5 in
  let net = Network.create g ~inputs:(Array.make 5 ()) ~seed:7L in
  let (_ : int array) =
    Network.run_broadcast net ~rounds:4
      ~size:(fun _ -> 64)
      ~init:(fun v -> v)
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s inbox -> List.fold_left min s inbox)
      ()
  in
  checki "charged" 4 (Network.rounds net);
  (* 5 nodes x degree 2 x 64 bits x 4 rounds. *)
  checki "bits metered" (5 * 2 * 64 * 4) (Network.bits net)

let test_broadcast_min_propagation () =
  (* After r rounds, each node knows the min id within distance r. *)
  let g = Generators.path 6 in
  let net = Network.create g ~inputs:(Array.make 6 ()) ~seed:8L in
  let states =
    Network.run_broadcast net ~rounds:2
      ~init:(fun v -> v)
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s inbox -> List.fold_left min s inbox)
      ()
  in
  Alcotest.check (Alcotest.array Alcotest.int) "min within distance 2"
    [| 0; 0; 0; 1; 2; 3 |] states

(* --- SLOCAL --- *)

let test_slocal_locality_enforced () =
  let g = Generators.path 5 in
  let rt = Slocal.create g ~seed:9L ~init:(fun _ -> 0) in
  Slocal.process rt ~v:0 ~radius:1 (fun ctx ->
      ignore (Slocal.read ctx 1);
      Alcotest.check_raises "read beyond radius"
        (Invalid_argument
           "Slocal.read: node 2 is at distance 2 > radius 1 from 0") (fun () ->
          ignore (Slocal.read ctx 2)))

let test_slocal_write_and_passes () =
  let g = Generators.path 4 in
  let rt = Slocal.create g ~seed:10L ~init:(fun _ -> 0) in
  Slocal.run_pass rt ~order:[| 0; 1; 2; 3 |] ~radius:1 (fun ctx ->
      Slocal.write ctx (Slocal.center ctx) (Slocal.center ctx * 2));
  Alcotest.check (Alcotest.array Alcotest.int) "writes" [| 0; 2; 4; 6 |]
    (Slocal.states rt);
  Slocal.run_pass rt ~order:[| 3; 2; 1; 0 |] ~radius:2 (fun ctx ->
      ignore (Slocal.read ctx (Slocal.center ctx)));
  Alcotest.check (Alcotest.list Alcotest.int) "pass localities" [ 1; 2 ]
    (Slocal.pass_localities rt);
  checki "single-pass bound (Lemma 4.4)" (1 + (2 * 2)) (Slocal.single_pass_locality rt)

let test_slocal_sequential_dependency () =
  (* Each node copies its predecessor's value + 1: order matters and reads
     must see earlier writes. *)
  let g = Generators.path 4 in
  let rt = Slocal.create g ~seed:11L ~init:(fun _ -> 0) in
  Slocal.run_pass rt ~order:[| 0; 1; 2; 3 |] ~radius:1 (fun ctx ->
      let v = Slocal.center ctx in
      let prev = if v = 0 then 0 else Slocal.read ctx (v - 1) in
      Slocal.write ctx v (prev + 1));
  Alcotest.check (Alcotest.array Alcotest.int) "prefix sums" [| 1; 2; 3; 4 |]
    (Slocal.states rt)

(* --- decomposition --- *)

let test_decomposition_valid_many () =
  let rng = Rng.create 12L in
  List.iter
    (fun g ->
      for _trial = 1 to 5 do
        let d = Decomposition.linial_saks g rng in
        checkb "valid decomposition" true (Decomposition.is_valid g d)
      done)
    [
      Generators.path 20;
      Generators.cycle 25;
      Generators.grid 5 6;
      Generators.erdos_renyi rng ~n:30 ~p:0.15;
      Generators.complete 8;
      Generators.random_tree rng 40;
    ]

let test_decomposition_covers_whp () =
  (* With default caps, failures should be rare; over several runs on a
     40-vertex graph, demand at least one full cover. *)
  let rng = Rng.create 13L in
  let g = Generators.cycle 40 in
  let full_covers = ref 0 in
  for _trial = 1 to 10 do
    let d = Decomposition.linial_saks g rng in
    if Array.for_all not d.Decomposition.failed then incr full_covers
  done;
  checkb "mostly full covers" true (!full_covers >= 8)

let test_decomposition_tiny_caps_fail () =
  (* phase_cap 0 clusters nothing: all vertices must be flagged, never
     silently dropped. *)
  let rng = Rng.create 14L in
  let g = Generators.path 10 in
  let d = Decomposition.linial_saks ~phase_cap:0 g rng in
  checki "all failed" 10
    (Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 d.Decomposition.failed)

let test_decomposition_colors_logarithmic () =
  let rng = Rng.create 15L in
  let g = Generators.cycle 64 in
  let d = Decomposition.linial_saks g rng in
  checkb "colors within cap" true
    (d.Decomposition.num_colors <= Decomposition.default_phase_cap 64)

(* --- scheduler --- *)

let test_scheduler_order_is_permutation () =
  let rng = Rng.create 16L in
  let g = Generators.cycle 15 in
  let seen_order = ref [||] in
  let stats =
    Scheduler.compile ~graph:g ~locality:1 ~rng
      ~run:(fun ~order -> seen_order := Array.copy order)
      ()
  in
  let sorted = Array.copy !seen_order in
  Array.sort compare sorted;
  Alcotest.check (Alcotest.array Alcotest.int) "order is a permutation"
    (Array.init 15 (fun i -> i))
    sorted;
  checkb "rounds positive" true (stats.Scheduler.rounds > 0);
  checkb "stats order matches" true (stats.Scheduler.order = !seen_order)

let test_scheduler_same_color_clusters_separated () =
  (* Clusters of one color must be > locality apart in G, so parallel
     simulation of SLOCAL steps with that read radius is safe. *)
  let rng = Rng.create 17L in
  let locality = 2 in
  let g = Generators.grid 4 6 in
  let power = Graph.power g (locality + 1) in
  let d = Decomposition.linial_saks power rng in
  checkb "decomposition of the power graph is valid" true
    (Decomposition.is_valid power d);
  (* Non-adjacency in G^{locality+1} == distance > locality+1 in G. *)
  Graph.iter_edges g (fun _ _ -> ());
  Array.iteri
    (fun i ci ->
      Array.iteri
        (fun j cj ->
          if i < j && ci >= 0 && cj >= 0 && ci <> cj then
            if d.Decomposition.color_of.(i) = d.Decomposition.color_of.(j) then
              checkb "separated" true (Graph.dist g i j > locality + 1))
        d.Decomposition.cluster_of)
    d.Decomposition.cluster_of

let test_scheduler_rounds_scale () =
  (* Rounds should grow with locality (both decomposition and simulation
     parts are multiplied by r+1). *)
  let g = Generators.cycle 20 in
  let run ~order:_ = () in
  let r1 =
    (Scheduler.compile ~graph:g ~locality:1 ~rng:(Rng.create 18L) ~run ()).Scheduler.rounds
  in
  let r4 =
    (Scheduler.compile ~graph:g ~locality:4 ~rng:(Rng.create 18L) ~run ()).Scheduler.rounds
  in
  checkb "more locality, more rounds" true (r4 > r1)

let test_scheduler_failure_path () =
  (* With a zero phase budget nothing gets clustered: every node must be
     flagged, yet the order still covers every vertex (failed vertices are
     appended, their outputs gated by the flags). *)
  let rng = Rng.create 23L in
  let g = Generators.cycle 10 in
  let stats =
    Scheduler.compile ~graph:g ~locality:1 ~rng ~phase_cap:0
      ~run:(fun ~order ->
        let sorted = Array.copy order in
        Array.sort compare sorted;
        Alcotest.check (Alcotest.array Alcotest.int) "order still total"
          (Array.init 10 (fun i -> i))
          sorted)
      ()
  in
  checki "all failed" 10 stats.Scheduler.failures;
  checkb "flags set" true (Array.for_all (fun f -> f) stats.Scheduler.failed)

let test_flood_views_meter_bits () =
  let g = Generators.cycle 6 in
  let net = Network.create g ~inputs:(Array.make 6 ()) ~seed:29L in
  let (_ : unit Network.view array) = Network.flood_views net ~radius:2 in
  checkb "bits metered on flooding" true (Network.bits net > 0)

let test_reset_bits () =
  (* Repeated trials over one network must not accumulate stale counts:
     reset_bits re-zeroes the meter, and a fault-free re-flood then meters
     exactly the first trial's bits again. *)
  let g = Generators.cycle 6 in
  let net = Network.create g ~inputs:(Array.make 6 ()) ~seed:30L in
  let (_ : unit Network.view array) = Network.flood_views net ~radius:2 in
  let first = Network.bits net in
  checkb "bits metered" true (first > 0);
  Network.reset_bits net;
  checki "meter re-zeroed" 0 (Network.bits net);
  let (_ : unit Network.view array) = Network.flood_views net ~radius:2 in
  checki "fresh trial meters the same bits, not 2x" first (Network.bits net)

let qcheck_decomposition_valid =
  QCheck.Test.make ~name:"Linial-Saks is always a valid decomposition" ~count:30
    QCheck.(pair small_int (int_range 4 25))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.erdos_renyi rng ~n ~p:0.2 in
      let d = Decomposition.linial_saks g rng in
      Decomposition.is_valid g d)

let suite =
  [
    Alcotest.test_case "gather basic" `Quick test_gather_basic;
    Alcotest.test_case "gather radius 0" `Quick test_gather_radius_zero;
    Alcotest.test_case "round accounting" `Quick test_rounds_accounting;
    Alcotest.test_case "node rngs independent" `Quick test_node_rngs_independent;
    Alcotest.test_case "flooding = gather" `Quick test_flood_matches_gather;
    Alcotest.test_case "broadcast charges rounds" `Quick test_broadcast_counts_rounds;
    Alcotest.test_case "broadcast min propagation" `Quick test_broadcast_min_propagation;
    Alcotest.test_case "slocal locality enforced" `Quick test_slocal_locality_enforced;
    Alcotest.test_case "slocal passes (Lemma 4.4)" `Quick test_slocal_write_and_passes;
    Alcotest.test_case "slocal sequential dependency" `Quick
      test_slocal_sequential_dependency;
    Alcotest.test_case "decomposition validity" `Quick test_decomposition_valid_many;
    Alcotest.test_case "decomposition covers whp" `Quick test_decomposition_covers_whp;
    Alcotest.test_case "decomposition certifiable failures" `Quick
      test_decomposition_tiny_caps_fail;
    Alcotest.test_case "decomposition color count" `Quick
      test_decomposition_colors_logarithmic;
    Alcotest.test_case "scheduler order" `Quick test_scheduler_order_is_permutation;
    Alcotest.test_case "scheduler separation" `Quick
      test_scheduler_same_color_clusters_separated;
    Alcotest.test_case "scheduler rounds scale" `Quick test_scheduler_rounds_scale;
    Alcotest.test_case "scheduler failure path" `Quick test_scheduler_failure_path;
    Alcotest.test_case "flooding meters bits" `Quick test_flood_views_meter_bits;
    Alcotest.test_case "reset_bits re-zeroes the meter" `Quick test_reset_bits;
    QCheck_alcotest.to_alcotest qcheck_decomposition_valid;
  ]
