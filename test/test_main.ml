let () =
  Alcotest.run "locsample"
    [
      (* The shard suite forks worker processes, and the runtime refuses
         Unix.fork in a process that has ever created a domain — so it
         must run before any suite that touches the domain pool. *)
      ("shard", Test_shard.suite);
      (* The serve suite forks daemon processes (and execs the CLI), so
         it shares the shard suite's before-any-domain constraint. *)
      ("serve", Test_serve.suite);
      (* The serve chaos harness forks daemons and proxies too. *)
      ("serve-chaos", Test_serve_chaos.suite);
      (* Forks fork-retry children, so it shares the constraint. *)
      ("sysfault", Test_sysfault.suite);
      ("rng", Test_rng.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("statistics", Test_statistics.suite);
      ("dist", Test_dist.suite);
      ("sketch", Test_sketch.suite);
      ("graph", Test_graph.suite);
      ("gibbs", Test_gibbs.suite);
      ("matching_dp", Test_matching_dp.suite);
      ("engines", Test_engines.suite);
      ("counting", Test_counting.suite);
      ("robustness", Test_robustness.suite);
      ("recovery", Test_recovery.suite);
      ("chaos", Test_chaos.suite);
      ("async", Test_async.suite);
      ("local", Test_local.suite);
      ("inference", Test_inference.suite);
      ("samplers", Test_samplers.suite);
      ("jvv", Test_jvv.suite);
      ("ssm", Test_ssm.suite);
    ]
