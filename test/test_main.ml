let () =
  Alcotest.run "locsample"
    [
      ("rng", Test_rng.suite);
      ("par", Test_par.suite);
      ("obs", Test_obs.suite);
      ("statistics", Test_statistics.suite);
      ("dist", Test_dist.suite);
      ("sketch", Test_sketch.suite);
      ("graph", Test_graph.suite);
      ("gibbs", Test_gibbs.suite);
      ("matching_dp", Test_matching_dp.suite);
      ("engines", Test_engines.suite);
      ("counting", Test_counting.suite);
      ("robustness", Test_robustness.suite);
      ("recovery", Test_recovery.suite);
      ("chaos", Test_chaos.suite);
      ("async", Test_async.suite);
      ("local", Test_local.suite);
      ("inference", Test_inference.suite);
      ("samplers", Test_samplers.suite);
      ("jvv", Test_jvv.suite);
      ("ssm", Test_ssm.suite);
    ]
