(* The observability layer's own contracts: ring-buffer retention, JSONL
   shape, the determinism guarantees (domain-count invariance via
   capture/replay, fault-seed invariance at zero rates), metrics counter
   aggregation, and the message meter on the pristine path. *)

module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Generators = Ls_graph.Generators
module Graph = Ls_graph.Graph
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Par = Ls_par.Par
module Rng = Ls_rng.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* Restore the ambient sink and the domain count whatever a test does. *)
let with_ambient trace f =
  Trace.install trace;
  Fun.protect ~finally:Trace.uninstall f

let with_domains k f =
  let saved = Par.domains () in
  Par.set_domains k;
  Fun.protect ~finally:(fun () -> Par.set_domains saved) f

let mark l = Trace.Mark { label = l }

let test_ring_retention () =
  let t = Trace.make ~capacity:4 () in
  for i = 0 to 9 do
    Trace.emit t (mark (string_of_int i))
  done;
  checki "total counts evicted events too" 10 (Trace.total t);
  checkb "ring keeps the last capacity events, oldest first" true
    (Trace.events t = List.map (fun i -> mark (string_of_int i)) [ 6; 7; 8; 9 ])

let test_jsonl_shape () =
  let path = Filename.temp_file "trace" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let t = Trace.make ~path () in
  Trace.emit t (Trace.Phase_start { label = {|flood "q\w|}; clock = 3 });
  Trace.emit t (Trace.Fault_delay { round = 1; src = 2; dst = 3; copy = 1; delay = 2 });
  Trace.close t;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let strip line =
    (* "ts" is always the first field, so dropping up to the first comma
       is the documented sed recipe. *)
    checkb "line opens with the ts field" true
      (String.length line > 6 && String.sub line 0 6 = {|{"ts":|});
    match String.index_opt line ',' with
    | Some i -> "{" ^ String.sub line (i + 1) (String.length line - i - 1)
    | None -> line
  in
  match List.rev_map strip !lines with
  | [ l1; l2 ] ->
      Alcotest.(check string)
        "escaped phase_start line"
        {|{"ev":"phase_start","label":"flood \"q\\w","clock":3}|} l1;
      Alcotest.(check string)
        "delay line"
        {|{"ev":"delay","round":1,"src":2,"dst":3,"copy":1,"delay":2}|} l2
  | ls -> Alcotest.failf "expected 2 JSONL lines, got %d" (List.length ls)

(* A seeded workload with real parallel structure: each trial floods a
   faulty network (drops + delays fire trace events from inside the
   runtime) and stamps a trial-local mark. *)
let traced_workload () =
  ignore
    (Par.run_trials ~n:8 ~seed:77L (fun rng ->
         let tag = Int64.to_string (Rng.bits64 rng) in
         Trace.to_ambient (mark tag);
         let g = Generators.cycle 8 in
         let faults =
           Faults.make ~seed:(Rng.bits64 rng) ~drop:0.2 ~delay:0.3
             ~max_delay:2 ()
         in
         let net =
           Network.create ~faults g ~inputs:(Array.make 8 ()) ~seed:5L
         in
         ignore (Network.flood_views net ~radius:2)))

let test_trace_domain_invariant () =
  (* The determinism contract's core claim: the event stream is a pure
     function of the seeds, independent of the domain count.  capture +
     index-ordered replay in Ls_par is what makes this hold. *)
  let run k =
    let t = Trace.make () in
    with_ambient t (fun () -> with_domains k traced_workload);
    Trace.events t
  in
  let e1 = run 1 and e4 = run 4 in
  checkb "some events were produced" true (List.length e1 > 8);
  checkb "event streams identical at 1 vs 4 domains" true (e1 = e4)

let test_trace_seed_invariant_without_faults () =
  (* With every fault rate at zero the plan's seed is inert: no fault
     event can fire, so traces at different fault seeds coincide (phase
     events only). *)
  let run fseed =
    let t = Trace.make () in
    let faults = Faults.make ~seed:fseed () in
    let net =
      Network.create ~faults ~trace:t (Generators.cycle 8)
        ~inputs:(Array.make 8 ()) ~seed:6L
    in
    ignore (Network.flood_views net ~radius:2);
    Trace.events t
  in
  let a = run 1L and b = run 999L in
  checkb "zero-rate traces are phase bookends only" true
    (List.for_all
       (function Trace.Phase_start _ | Trace.Phase_end _ -> true | _ -> false)
       a);
  checkb "fault seed leaves the zero-rate trace unchanged" true (a = b)

let test_pristine_message_meter () =
  (* Fault-free flood: one copy per directed edge per round, so the meter
     reads exactly radius * 2m. *)
  let g = Generators.cycle 9 in
  let net = Network.create g ~inputs:(Array.make 9 ()) ~seed:7L in
  ignore (Network.flood_views net ~radius:3);
  checki "messages = radius * 2m" (3 * 2 * Graph.m g) (Network.messages net)

let test_metrics_aggregation () =
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
  @@ fun () ->
  Metrics.reset ();
  Metrics.record_phase ~rounds:3 ~bits:10 ~messages:5;
  Metrics.record_phase ~rounds:2 ~bits:0 ~messages:7;
  Metrics.record_drop ();
  Metrics.record_delay ();
  Metrics.record_delay ();
  Metrics.record_attempt ~retry:false;
  Metrics.record_attempt ~retry:true;
  Metrics.record_backoff ~rounds:4;
  Metrics.record_decomposition ~failures:2;
  Metrics.record_batch ~items:6 ~per_worker:[| 2; 4 |];
  Metrics.record_batch ~items:3 ~per_worker:[| 3 |];
  let s = Metrics.snapshot () in
  checki "phases" 2 s.Metrics.phases;
  checki "rounds" 5 s.Metrics.rounds;
  checki "bits" 10 s.Metrics.bits;
  checki "messages" 12 s.Metrics.messages;
  checki "drops" 1 s.Metrics.drops;
  checki "delays" 2 s.Metrics.delays;
  checki "attempts" 2 s.Metrics.attempts;
  checki "retries" 1 s.Metrics.retries;
  checki "backoff rounds" 4 s.Metrics.backoff_rounds;
  checki "decompositions" 1 s.Metrics.decompositions;
  checki "decomposition failures" 2 s.Metrics.decomposition_failures;
  checki "batches" 2 s.Metrics.batches;
  checki "items" 9 s.Metrics.items;
  checki "max queue" 6 s.Metrics.max_queue;
  checkb "per-domain sums to items" true
    (Array.fold_left ( + ) 0 s.Metrics.per_domain = 9);
  Metrics.reset ();
  let z = Metrics.snapshot () in
  checki "reset zeroes phases" 0 z.Metrics.phases;
  checki "reset zeroes items" 0 z.Metrics.items

let test_metrics_disabled_is_inert () =
  Metrics.reset ();
  checkb "metrics start disabled in tests" false (Metrics.enabled ());
  Metrics.record_phase ~rounds:9 ~bits:9 ~messages:9;
  Metrics.record_crash ();
  checki "disabled recorders do not count" 0 (Metrics.snapshot ()).Metrics.phases

let test_metrics_match_trace_counts () =
  (* The two observers agree: aggregate counters equal the event tallies
     of the same run. *)
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled false)
  @@ fun () ->
  Metrics.reset ();
  let t = Trace.make () in
  let faults = Faults.make ~seed:21L ~drop:0.2 ~delay:0.3 ~max_delay:2 () in
  let net =
    Network.create ~faults ~trace:t (Generators.cycle 10)
      ~inputs:(Array.make 10 ()) ~seed:22L
  in
  ignore (Network.flood_views net ~radius:2);
  let s = Metrics.snapshot () in
  let count p = List.length (List.filter p (Trace.events t)) in
  checki "drops agree"
    (count (function Trace.Fault_drop _ -> true | _ -> false))
    s.Metrics.drops;
  checki "delays agree"
    (count (function Trace.Fault_delay _ -> true | _ -> false))
    s.Metrics.delays;
  checki "phases agree"
    (count (function Trace.Phase_end _ -> true | _ -> false))
    s.Metrics.phases

let test_snapshot_batch_race_hammer () =
  (* The pool-utilization group (batches / items / max_queue / per_domain)
     must be updated atomically with respect to snapshot and reset: a
     reader hammering snapshots against a domain recording batches must
     never observe a torn group — the batch count without its per-domain
     split.  Mirrors the PR-3 pool-resize hammer. *)
  Metrics.set_enabled true;
  let stop = Atomic.make false in
  let recorder =
    Domain.spawn (fun () ->
        while not (Atomic.get stop) do
          Metrics.record_batch ~items:3 ~per_worker:[| 1; 2 |]
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join recorder;
      Metrics.reset ();
      Metrics.set_enabled false)
    (fun () ->
      let torn = ref 0 in
      for i = 1 to 5000 do
        let s = Metrics.snapshot () in
        let pd_sum = Array.fold_left ( + ) 0 s.Metrics.per_domain in
        if pd_sum <> s.Metrics.items then incr torn;
        if s.Metrics.items <> 3 * s.Metrics.batches then incr torn;
        if s.Metrics.batches > 0 && s.Metrics.max_queue <> 3 then incr torn;
        (* Reset mid-flight: the group must zero as one unit too. *)
        if i mod 1000 = 0 then Metrics.reset ()
      done;
      checki "no torn pool-utilization snapshots" 0 !torn)

let suite =
  [
    Alcotest.test_case "ring retention + total" `Quick test_ring_retention;
    Alcotest.test_case "JSONL shape and escaping" `Quick test_jsonl_shape;
    Alcotest.test_case "trace invariant across domain counts" `Quick
      test_trace_domain_invariant;
    Alcotest.test_case "zero-rate trace ignores fault seed" `Quick
      test_trace_seed_invariant_without_faults;
    Alcotest.test_case "pristine message meter" `Quick
      test_pristine_message_meter;
    Alcotest.test_case "metrics aggregate and reset" `Quick
      test_metrics_aggregation;
    Alcotest.test_case "disabled metrics are inert" `Quick
      test_metrics_disabled_is_inert;
    Alcotest.test_case "metrics agree with trace tallies" `Quick
      test_metrics_match_trace_counts;
    Alcotest.test_case "snapshot vs record_batch hammer" `Quick
      test_snapshot_batch_race_hammer;
  ]
