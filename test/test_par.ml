(* Tests for the deterministic domain-parallel trial engine (lib/par):
   bit-for-bit domain-count invariance, seed-split stream hygiene, the
   map/map_reduce helpers, timing capture, and failure behaviour. *)

module Par = Ls_par.Par
module Pool = Ls_par.Pool
module Rng = Ls_rng.Rng

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* A trial body that consumes a *data-dependent* amount of randomness:
   if any state leaked between trials or depended on scheduling, the
   outputs could not stay identical across domain counts. *)
let trial_body rng =
  let k = 1 + Rng.int rng 8 in
  let acc = ref 0. in
  for _ = 1 to k do
    acc := !acc +. Rng.float rng
  done;
  (k, !acc)

let qcheck_domain_count_invariance =
  QCheck.Test.make
    ~name:"run_trials is bit-for-bit invariant in the domain count" ~count:20
    QCheck.(pair small_int (int_range 0 40))
    (fun (seed, n) ->
      let seed = Int64.of_int seed in
      let reference = Par.run_trials ~domains:1 ~n ~seed trial_body in
      List.for_all
        (fun d ->
          let out = Par.run_trials ~domains:d ~n ~seed trial_body in
          Array.length out = n
          && Array.for_all2 (fun a b -> a = b) out reference)
        [ 2; 4 ])

let qcheck_streams_distinct_and_reproducible =
  QCheck.Test.make
    ~name:"seed-split trial streams are pairwise distinct and reproducible"
    ~count:30
    QCheck.(pair small_int (int_range 2 64))
    (fun (seed, n) ->
      let seed = Int64.of_int seed in
      let firsts ~domains =
        Par.run_trials ~domains ~n ~seed (fun rng ->
            (Rng.bits64 rng, Rng.float rng))
      in
      let a = firsts ~domains:2 and b = firsts ~domains:2 in
      let pairwise_distinct = Hashtbl.create n in
      Array.for_all
        (fun x ->
          if Hashtbl.mem pairwise_distinct x then false
          else begin
            Hashtbl.add pairwise_distinct x ();
            true
          end)
        a
      && a = b)

let qcheck_map_matches_sequential =
  QCheck.Test.make ~name:"Par.map agrees with Array.map at every domain count"
    ~count:30
    QCheck.(list_of_size (Gen.int_range 0 50) int)
    (fun xs ->
      let xs = Array.of_list xs in
      let f x = (x * x) - (3 * x) in
      let expected = Array.map f xs in
      List.for_all (fun d -> Par.map ~domains:d f xs = expected) [ 1; 2; 4 ])

let test_map_reduce_deterministic_fold_order () =
  (* Float addition is not associative: only a fixed fold order makes the
     reduction reproducible.  Compare against the sequential left fold. *)
  let xs = Array.init 200 (fun i -> 1. /. float_of_int (i + 1)) in
  let expected = Array.fold_left ( +. ) 0. xs in
  List.iter
    (fun d ->
      let got = Par.map_reduce ~domains:d ~map:Fun.id ~reduce:( +. ) 0. xs in
      check (Alcotest.float 0.) "bitwise-equal float sum" expected got)
    [ 1; 2; 4 ]

let test_map_seeded_invariance () =
  let items = [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  let f x rng = (x, Rng.int rng 1000, Rng.float rng) in
  let reference = Par.map_seeded ~domains:1 ~seed:7L f items in
  List.iter
    (fun d ->
      checkb "map_seeded invariant" true
        (Par.map_seeded ~domains:d ~seed:7L f items = reference))
    [ 2; 4 ]

let test_run_trials_matches_streams () =
  (* The engine's stream derivation is exactly Rng.streams: trial i can be
     replayed in isolation. *)
  let n = 10 and seed = 123L in
  let out = Par.run_trials ~domains:3 ~n ~seed (fun rng -> Rng.float rng) in
  let streams = Rng.streams seed n in
  Array.iteri
    (fun i s -> check (Alcotest.float 0.) "replayable" (Rng.float s) out.(i))
    streams

let test_timed_results_match_untimed () =
  let n = 16 and seed = 5L in
  let plain = Par.run_trials ~domains:2 ~n ~seed trial_body in
  let timed, t = Par.run_trials_timed ~domains:2 ~n ~seed trial_body in
  checkb "same results" true (plain = timed);
  check Alcotest.int "one timing per trial" n (Array.length t.per_trial);
  check Alcotest.int "domains recorded" 2 t.domains;
  checkb "wall covers trials" true (t.wall >= 0.);
  Array.iter (fun d -> checkb "non-negative per-trial time" true (d >= 0.)) t.per_trial

let test_exception_of_smallest_index () =
  (* Indices 3 and 7 fail; whatever the schedule, the engine must surface
     index 3. *)
  let failing i = if i = 3 || i = 7 then failwith (string_of_int i) else i in
  List.iter
    (fun d ->
      Alcotest.check_raises "smallest failing index wins" (Failure "3")
        (fun () ->
          ignore
            (Par.map ~domains:d failing (Array.init 10 (fun i -> i)))))
    [ 1; 2; 4 ]

let test_nested_calls_fall_back_sequentially () =
  (* A trial that itself calls the engine must not deadlock; the nested
     batch runs in-place and the combined output stays deterministic. *)
  let nested seed =
    Par.run_trials ~n:4 ~seed (fun rng ->
        Array.to_list (Par.run_trials ~n:3 ~seed:(Rng.bits64 rng) (fun r -> Rng.float r)))
  in
  let a = nested 11L in
  Par.set_domains 2;
  let b = nested 11L in
  Par.set_domains 1;
  let c = nested 11L in
  Par.set_domains (Par.default_domains ());
  checkb "nested deterministic (2 domains)" true (a = b);
  checkb "nested deterministic (1 domain)" true (a = c)

let test_domains_override () =
  Par.set_domains 3;
  check Alcotest.int "override visible" 3 (Par.domains ());
  Par.set_domains (Par.default_domains ());
  check Alcotest.int "restored" (Par.default_domains ()) (Par.domains ())

let test_invalid_arguments () =
  Alcotest.check_raises "domains >= 1"
    (Invalid_argument "Par.set_domains: domain count must be >= 1") (fun () ->
      Par.set_domains 0);
  Alcotest.check_raises "pool size >= 1"
    (Invalid_argument "Pool.create: size must be >= 1") (fun () ->
      ignore (Pool.create 0))

let test_pool_direct_use () =
  let pool = Pool.create 3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      check Alcotest.int "size" 3 (Pool.size pool);
      let hits = Array.make 100 0 in
      Pool.run pool ~n:100 (fun i -> hits.(i) <- hits.(i) + 1);
      checkb "each index exactly once" true (Array.for_all (( = ) 1) hits);
      (* A pool is reusable batch after batch. *)
      let sum = Atomic.make 0 in
      Pool.run pool ~n:50 (fun i -> ignore (Atomic.fetch_and_add sum i));
      check Alcotest.int "second batch" (50 * 49 / 2) (Atomic.get sum));
  Alcotest.check_raises "use after shutdown"
    (Invalid_argument "Pool.run: pool is shut down") (fun () ->
      Pool.run pool ~n:2 (fun _ -> ()))

let test_empirical_collect_invariant () =
  let sample rng = [| Rng.int rng 3; Rng.int rng 3 |] in
  let collect domains =
    Ls_dist.Empirical.collect ~domains ~n:500 ~seed:9L sample
  in
  let a = collect 1 and b = collect 4 in
  check Alcotest.int "same total" (Ls_dist.Empirical.total a)
    (Ls_dist.Empirical.total b);
  Ls_dist.Empirical.iter a (fun sigma c ->
      check Alcotest.int "same multiset" c (Ls_dist.Empirical.count b sigma));
  let ma = Ls_dist.Empirical.marginal a ~v:0 ~q:3 in
  check (Alcotest.float 1e-12) "marginal sums to 1" 1.
    (Array.fold_left ( +. ) 0. ma)

let test_resize_race_hammer () =
  (* The global pool is refcounted: a resize retires the old pool but must
     not tear it down under a caller mid-run.  Hammer run_trials against a
     domain spawning continuous set_domains flips; every batch must still
     match the sequential reference bit-for-bit, and nothing may crash. *)
  let n = 24 in
  let body = trial_body in
  let reference = Par.run_trials ~domains:1 ~n ~seed:314L body in
  let stop = Atomic.make false in
  let flipper =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while not (Atomic.get stop) do
          Par.set_domains (1 + (!i mod 3));
          (* An empty batch still acquires/releases the shared slot. *)
          ignore (Par.run_trials ~n:0 ~seed:0L (fun _ -> ()));
          incr i
        done)
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      Domain.join flipper;
      Par.set_domains (Par.default_domains ()))
    (fun () ->
      for _ = 1 to 60 do
        let got = Par.run_trials ~n ~seed:314L body in
        checkb "hammered batch matches sequential reference" true
          (got = reference)
      done)

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_domain_count_invariance;
    QCheck_alcotest.to_alcotest qcheck_streams_distinct_and_reproducible;
    QCheck_alcotest.to_alcotest qcheck_map_matches_sequential;
    Alcotest.test_case "map_reduce fold order" `Quick
      test_map_reduce_deterministic_fold_order;
    Alcotest.test_case "map_seeded invariance" `Quick test_map_seeded_invariance;
    Alcotest.test_case "trial streams replayable" `Quick
      test_run_trials_matches_streams;
    Alcotest.test_case "timed run matches untimed" `Quick
      test_timed_results_match_untimed;
    Alcotest.test_case "smallest failing index" `Quick
      test_exception_of_smallest_index;
    Alcotest.test_case "nested calls sequential fallback" `Quick
      test_nested_calls_fall_back_sequentially;
    Alcotest.test_case "set_domains override" `Quick test_domains_override;
    Alcotest.test_case "invalid arguments" `Quick test_invalid_arguments;
    Alcotest.test_case "pool direct use" `Quick test_pool_direct_use;
    Alcotest.test_case "Empirical.collect invariance" `Quick
      test_empirical_collect_invariant;
    Alcotest.test_case "set_domains vs run_trials hammer" `Quick
      test_resize_race_hammer;
  ]
