(* The crash-recovery / partition / integrity layer.

   Companion to Test_robustness's network axis: that file covers drops,
   crash-stop, delays and retry accounting; this one covers what the
   recovery extension added — crash intervals with checkpoint/restore,
   partition intervals that cut and heal, integrity quarantine with the
   conservation law, permanent-vs-transient failure classification, the
   merge_views lattice laws, and the describe snapshots the CLI prints. *)

module Generators = Ls_graph.Generators
module Graph = Ls_graph.Graph
module Models = Ls_gibbs.Models
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Empirical = Ls_dist.Empirical
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Trace = Ls_obs.Trace

open Ls_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* --- crash-recovery intervals ------------------------------------------ *)

let test_crash_interval_semantics () =
  (* Recovery rides on independent salts: granting it must not move the
     crash rounds, only bound the dark interval. *)
  let stop = Faults.make ~seed:71L ~crash:1.0 ~crash_horizon:8 () in
  let recov =
    Faults.make ~seed:71L ~crash:1.0 ~crash_horizon:8 ~recovery:1.0
      ~recovery_delay:3 ()
  in
  for v = 0 to 15 do
    match
      (Faults.crash_interval stop ~node:v, Faults.crash_interval recov ~node:v)
    with
    | Some (c, None), Some (c', Some r) ->
        checki "same crash round with or without recovery" c c';
        checkb "recovery strictly after the crash" true (r > c);
        checkb "recovery within the delay bound" true (r <= c + 3)
    | _ -> Alcotest.fail "expected crash-stop vs crash-recovery intervals"
  done

let test_recovery_restores_liveness () =
  (* Everyone crashes at round 0 and recovers at round 1: the first flood
     sees them restored mid-phase (catch-up charged on top of the phase
     length), and the next flood runs on a fully live network. *)
  let n = 6 in
  let g = Generators.cycle n in
  let faults =
    Faults.make ~seed:73L ~crash:1.0 ~crash_horizon:1 ~recovery:1.0
      ~recovery_delay:1 ()
  in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:74L in
  for v = 0 to n - 1 do
    checkb "down at clock 0" true (Network.crashed net v);
    checkb "but not permanently" false (Network.permanently_crashed net v)
  done;
  let r0 = Network.rounds net in
  ignore (Network.flood_views net ~radius:2);
  for v = 0 to n - 1 do
    checkb "back up after the recovery round" false (Network.crashed net v)
  done;
  checki "phase charged its length plus one round of catch-up" 3
    (Network.rounds net - r0);
  let v2 = Network.flood_views net ~radius:2 in
  Array.iter
    (fun v -> checkb "post-recovery flood complete" true
        (Network.view_is_complete net v))
    v2

let test_checkpoint_restore_across_phases () =
  (* Counter states make checkpoint semantics exactly countable: every
     node crashes at round 0 (checkpointing its phase-1 state, 0 merges)
     and recovers at r in [1,8].  Two 4-round phases share the ckpt
     carrier; phase 2's init is a sentinel no genuine restore can
     produce.  A node restored within phase 1 counts 4 - r merges there
     and starts phase 2 from the sentinel like any live node; a node
     still dark at the boundary must restore the PHASE-1 checkpoint in
     phase 2 — its final count is 8 - r, not sentinel + merges. *)
  let n = 8 in
  let g = Generators.cycle n in
  let faults =
    Faults.make ~seed:75L ~crash:1.0 ~crash_horizon:1 ~recovery:1.0
      ~recovery_delay:8 ()
  in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:76L in
  let ck = Network.carrier () in
  let phase init =
    Network.run_broadcast net ~rounds:4 ~ckpt:ck ~init
      ~emit:(fun _ s -> s)
      ~merge:(fun _ s _ -> s + 1)
      ()
  in
  let states1 = phase (fun _ -> 0) in
  let states2 = phase (fun _ -> -1000) in
  let late = ref false and early = ref false in
  for v = 0 to n - 1 do
    match Faults.crash_interval faults ~node:v with
    | Some (0, Some r) when r < 4 ->
        early := true;
        checki "restored within phase 1: 4 - r merges" (4 - r) states1.(v);
        checki "then phase 2 runs from its own init" (-1000 + 4) states2.(v)
    | Some (0, Some r) ->
        late := true;
        checki "dark through phase 1: frozen at the checkpoint" 0 states1.(v);
        checki "restore in phase 2 projects the phase-1 checkpoint" (8 - r)
          states2.(v)
    | _ -> Alcotest.fail "plan grants every node a recovery at round 0"
  done;
  (* Both paths must actually occur at this seed. *)
  checkb "some restore landed within phase 1" true !early;
  checkb "some restore crossed the phase boundary" true !late

(* --- integrity: quarantine and conservation ---------------------------- *)

let test_quarantine_and_conservation () =
  let n = 6 in
  let g = Generators.cycle n in
  let faults =
    Faults.make ~seed:81L ~drop:0.1 ~duplicate:0.2 ~corrupt:0.5 ()
  in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:82L in
  let received = ref [] in
  ignore
    (Network.run_broadcast net ~rounds:4
       ~corrupt:(fun ~round:_ ~src:_ ~dst:_ m -> m + 1000)
       ~digest:(fun m -> m)
       ~init:(fun v -> v)
       ~emit:(fun v _ -> v)
       ~merge:(fun _ s inbox ->
         received := inbox @ !received;
         s)
       ());
  checkb "some copies quarantined" true (Network.quarantined_count net > 0);
  List.iter
    (fun m -> checkb "no corrupted payload delivered" true (m < 1000))
    !received;
  checki "delivered meter matches merge-visible copies"
    (List.length !received)
    (Network.delivered_count net);
  checki "sent = delivered + pending + quarantined + dead"
    (Network.messages net)
    (Network.delivered_count net + Network.pending_count net
    + Network.quarantined_count net
    + Network.dead_letter_count net)

let test_digest_collision_delivers_silently () =
  (* Integrity is only as strong as the digest: a constant digest cannot
     expose anything, so corrupted copies flow through undetected. *)
  let n = 6 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:83L ~corrupt:1.0 () in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:84L in
  let corrupted_delivered = ref 0 in
  ignore
    (Network.run_broadcast net ~rounds:2
       ~corrupt:(fun ~round:_ ~src:_ ~dst:_ m -> m + 1000)
       ~digest:(fun _ -> 0)
       ~init:(fun v -> v)
       ~emit:(fun v _ -> v)
       ~merge:(fun _ s inbox ->
         List.iter
           (fun m -> if m >= 1000 then incr corrupted_delivered)
           inbox;
         s)
       ());
  checki "nothing quarantined" 0 (Network.quarantined_count net);
  checkb "collisions deliver the corruption" true (!corrupted_delivered > 0)

let test_flood_views_stay_truthful_under_corruption () =
  (* The flood path carries its own digest, so a corrupted record is
     quarantined — a view can be incomplete but never contains a vertex
     that does not exist. *)
  let n = 8 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:87L ~corrupt:0.6 () in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:88L in
  let views = Network.flood_views net ~radius:2 in
  checkb "flood corruption caught by the adjacency digest" true
    (Network.quarantined_count net > 0);
  Array.iter
    (fun view ->
      Array.iter
        (fun o -> checkb "every known vertex is real" true (o >= 0 && o < n))
        view.Network.vertices)
    views;
  checkb "quarantine surfaces as loss: some view incomplete" true
    (Array.exists (fun v -> not (Network.view_is_complete net v)) views)

(* --- partitions --------------------------------------------------------- *)

let test_partition_cuts_and_heals () =
  let plan = Faults.make ~seed:95L ~partitions:[ (0, 3, 2) ] () in
  (match Faults.partition_parts plan ~round:1 with
  | Some (index, parts) ->
      checki "two sides" 2 parts;
      let cut_somewhere = ref false in
      for v = 0 to 9 do
        let sv = Faults.partition_side plan ~index ~node:v ~parts in
        checkb "side in range" true (sv >= 0 && sv < parts);
        for w = 0 to 9 do
          if v <> w then begin
            let sw = Faults.partition_side plan ~index ~node:w ~parts in
            let cut = Faults.partitioned plan ~round:1 ~src:v ~dst:w in
            checkb "cut iff cross-side" (sv <> sw) cut;
            if cut then cut_somewhere := true;
            checkb "no cut after the heal" false
              (Faults.partitioned plan ~round:3 ~src:v ~dst:w)
          end
        done
      done;
      checkb "the interval cuts something" true !cut_somewhere
  | None -> Alcotest.fail "interval [0,3) must be in force at round 1");
  checkb "nothing in force after the heal" true
    (Faults.partition_parts plan ~round:3 = None)

let test_recovery_trace_events () =
  (* One flood under the full fault vocabulary: the trace must carry the
     new event kinds with the per-node counts the plan dictates. *)
  let t = Trace.make () in
  let n = 6 in
  let g = Generators.cycle n in
  let faults =
    Faults.make ~seed:85L ~crash:1.0 ~crash_horizon:1 ~recovery:1.0
      ~recovery_delay:2 ~corrupt:0.5
      ~partitions:[ (0, 2, 2) ]
      ()
  in
  let net = Network.create ~faults ~trace:t g ~inputs:(Array.make n ()) ~seed:86L in
  ignore (Network.flood_views net ~radius:3);
  let count p = List.length (List.filter p (Trace.events t)) in
  checki "one checkpoint per node" n
    (count (function Trace.Checkpoint _ -> true | _ -> false));
  checki "one restore per node" n
    (count (function Trace.Restore _ -> true | _ -> false));
  checki "partition came into force once" 1
    (count (function Trace.Partition _ -> true | _ -> false));
  checki "and healed once" 1
    (count (function Trace.Heal _ -> true | _ -> false));
  checkb "quarantines traced" true
    (count (function Trace.Quarantine _ -> true | _ -> false) > 0);
  List.iter
    (function
      | Trace.Restore { missed; _ } ->
          checkb "missed rounds positive and within the delay bound" true
            (missed >= 1 && missed <= 3)
      | _ -> ())
    (Trace.events t)

(* --- permanent vs transient classification ----------------------------- *)

let test_permanent_failure_stops_immediately () =
  let calls = ref 0 and charged = ref 0 in
  let x, report =
    Resilient.run_classified
      (Resilient.policy ~retry_budget:5 ())
      ~charge:(fun r -> charged := !charged + r)
      (fun ~attempt:_ ->
        incr calls;
        Error (Resilient.Permanent "everyone crash-stopped"))
  in
  checkb "no value" true (x = None);
  checki "a permanent failure is not retried" 1 !calls;
  checkb "degraded" true report.Resilient.degraded;
  checki "no backoff burnt waiting for the impossible" 0 !charged;
  checki "reason recorded" 1 (List.length report.Resilient.reasons)

let test_transient_then_permanent () =
  let calls = ref 0 and charged = ref 0 in
  let x, report =
    Resilient.run_classified
      (Resilient.policy ~retry_budget:5 ~backoff_base:1 ~backoff_factor:2 ())
      ~charge:(fun r -> charged := !charged + r)
      (fun ~attempt ->
        incr calls;
        if attempt = 0 then Error (Resilient.Transient "lost messages")
        else Error (Resilient.Permanent "then they crash-stopped"))
  in
  checkb "no value" true (x = None);
  checki "transient retried once, permanent not" 2 !calls;
  checki "only the transient's backoff charged" 1 !charged;
  checkb "degraded" true report.Resilient.degraded

let test_sampler_classifies_crash_stop_vs_recovery () =
  (* End to end: everyone crash-stops => the supervisor gives up after one
     attempt (budget kept unspent); the same crashes with recovery granted
     are waited out within the budget and the sample succeeds. *)
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let policy = Resilient.policy ~retry_budget:6 () in
  let stop = Faults.make ~seed:91L ~crash:1.0 ~crash_horizon:1 () in
  let r = Local_sampler.sample_resilient oracle ~policy ~faults:stop inst ~seed:92L in
  let rep = Option.get r.Local_sampler.resilience in
  checkb "crash-stop of everyone degrades" true rep.Resilient.degraded;
  checki "and is recognized as permanent: one attempt" 1 rep.Resilient.attempts;
  let recov =
    Faults.make ~seed:91L ~crash:1.0 ~crash_horizon:1 ~recovery:1.0
      ~recovery_delay:2 ()
  in
  let r2 =
    Local_sampler.sample_resilient oracle ~policy ~faults:recov inst ~seed:92L
  in
  checkb "the same crashes with recovery are waited out" true
    r2.Local_sampler.success

let test_budget_exhaustion_spends_everything () =
  (* Boundary opposite to the permanent case: a failure that stays
     transient until the budget runs out must spend the whole budget —
     every retry taken, every backoff round in the geometric schedule
     charged — before degrading. *)
  let calls = ref 0 and charged = ref 0 in
  let x, report =
    Resilient.run_classified
      (Resilient.policy ~retry_budget:3 ~backoff_base:1 ~backoff_factor:2 ())
      ~charge:(fun r -> charged := !charged + r)
      (fun ~attempt:_ ->
        incr calls;
        Error (Resilient.Transient "still raining"))
  in
  checkb "no value" true (x = None);
  checki "budget + 1 attempts executed" 4 !calls;
  checki "attempts reported" 4 report.Resilient.attempts;
  checki "full geometric backoff charged (1+2+4)" 7 !charged;
  checki "report agrees with the charge hook" 7 report.Resilient.backoff_rounds;
  checkb "degraded" true report.Resilient.degraded;
  checki "every attempt left a reason" 4 (List.length report.Resilient.reasons)

let test_all_crashed_with_recovery_pending_is_transient () =
  (* Every node down at once, but each with a recovery scheduled: that is
     NOT a permanent failure — the supervisor must keep spending budget
     waiting it out, not stop after one attempt the way crash-stop does. *)
  let n = 8 in
  let faults =
    Faults.make ~seed:93L ~crash:1.0 ~crash_horizon:1 ~recovery:1.0
      ~recovery_delay:60 ()
  in
  let net =
    Network.create ~faults (Generators.cycle n) ~inputs:(Array.make n ())
      ~seed:1L
  in
  let all_down = ref true and any_hopeless = ref false in
  for v = 0 to n - 1 do
    if not (Network.crashed net v) then all_down := false;
    if Network.permanently_crashed net v then any_hopeless := true
  done;
  checkb "every node is down at round 0" true !all_down;
  checkb "yet none is hopeless: recovery is pending" true (not !any_hopeless);
  (* End to end: recovery is scheduled but too far out for this budget, so
     the run degrades — after burning the WHOLE budget (transient all the
     way), in contrast to the crash-stop case's single attempt above. *)
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let policy = Resilient.policy ~retry_budget:2 ~backoff_base:1 () in
  let r = Local_sampler.sample_resilient oracle ~policy ~faults inst ~seed:92L in
  let rep = Option.get r.Local_sampler.resilience in
  checkb "recovery beyond the budget still degrades" true
    rep.Resilient.degraded;
  checki "but classified transient: full budget spent" 3 rep.Resilient.attempts;
  checki "with every backoff round charged (1+2)" 3 rep.Resilient.backoff_rounds

(* --- merge_views lattice laws (property tests) ------------------------- *)

let views_equal (a : 'i Network.view) (b : 'i Network.view) =
  a.Network.vertices = b.Network.vertices
  && Graph.edges a.Network.subgraph = Graph.edges b.Network.subgraph
  && a.Network.view_inputs = b.Network.view_inputs
  && a.Network.dist_center = b.Network.dist_center
  && a.Network.center_local = b.Network.center_local

let qcheck_merge_views_lattice =
  QCheck.Test.make
    ~name:"merge_views is commutative, idempotent, and absorbs subsets"
    ~count:25
    QCheck.(pair small_int (int_range 5 10))
    (fun (seed, n) ->
      let g = Generators.cycle n in
      let faults =
        Faults.make ~seed:(Int64.of_int (1000 + seed)) ~drop:0.4 ()
      in
      let net =
        Network.create ~faults g ~inputs:(Array.init n Fun.id)
          ~seed:(Int64.of_int (seed + 1))
      in
      let a = Network.flood_views net ~radius:2 in
      let b = Network.flood_views net ~radius:2 in
      let ok = ref true in
      for v = 0 to n - 1 do
        let m1 = Network.merge_views net a.(v) b.(v) in
        let m2 = Network.merge_views net b.(v) a.(v) in
        let full = Network.gather net ~v ~radius:2 in
        ok :=
          !ok && views_equal m1 m2
          && views_equal (Network.merge_views net a.(v) a.(v)) a.(v)
          && views_equal (Network.merge_views net m1 a.(v)) m1
          && views_equal (Network.merge_views net full a.(v)) full
      done;
      !ok)

let qcheck_merge_matches_fault_free_flood =
  QCheck.Test.make
    ~name:"merge of fault-free floods agrees with a fresh full flood"
    ~count:25
    QCheck.(pair small_int (int_range 5 10))
    (fun (seed, n) ->
      let g = Generators.cycle n in
      let net =
        Network.create g ~inputs:(Array.init n Fun.id)
          ~seed:(Int64.of_int (2000 + seed))
      in
      let a = Network.flood_views net ~radius:2 in
      let b = Network.flood_views net ~radius:2 in
      let ok = ref true in
      for v = 0 to n - 1 do
        ok :=
          !ok
          && views_equal
               (Network.merge_views net a.(v) b.(v))
               (Network.gather net ~v ~radius:2)
      done;
      !ok)

(* --- describe snapshots ------------------------------------------------- *)

let test_describe_snapshots () =
  let d = Faults.describe in
  checks "zero plan" "no faults" (d Faults.none);
  checks "drop only" "faults(seed=7 drop=0.25)"
    (d (Faults.make ~seed:7L ~drop:0.25 ()));
  checks "delay with its bound" "faults(seed=7 delay=0.3(max 2))"
    (d (Faults.make ~seed:7L ~delay:0.3 ~max_delay:2 ()));
  checks "max_delay shown even without a delay rate"
    "faults(seed=7 drop=0.1 max_delay=3)"
    (d (Faults.make ~seed:7L ~drop:0.1 ~max_delay:3 ()));
  checks "crash-stop" "faults(seed=7 crash=0.5(by round 12))"
    (d (Faults.make ~seed:7L ~crash:0.5 ~crash_horizon:12 ()));
  checks "crash-recovery"
    "faults(seed=7 crash=0.5(by round 12) recovery=1(within 4))"
    (d
       (Faults.make ~seed:7L ~crash:0.5 ~crash_horizon:12 ~recovery:1.0
          ~recovery_delay:4 ()));
  checks "corrupt" "faults(seed=7 corrupt=0.02)"
    (d (Faults.make ~seed:7L ~corrupt:0.02 ()));
  checks "schedules" "faults(seed=7 partition[2,6)x2 burst[8,10)@0.5)"
    (d
       (Faults.make ~seed:7L
          ~partitions:[ (2, 6, 2) ]
          ~bursts:[ (8, 10, 0.5) ]
          ()));
  checks "everything at once"
    "faults(seed=43 drop=0.05 dup=0.05 delay=0.3(max 2) crash=0.05(by round \
     64) recovery=1(within 4) corrupt=0.02 partition[2,6)x2 burst[8,10)@0.5)"
    (d
       (Faults.make ~seed:43L ~drop:0.05 ~duplicate:0.05 ~delay:0.3
          ~max_delay:2 ~crash:0.05 ~recovery:1.0 ~recovery_delay:4
          ~corrupt:0.02
          ~partitions:[ (2, 6, 2) ]
          ~bursts:[ (8, 10, 0.5) ]
          ()))

let test_reseed_keeps_shape () =
  let base =
    Faults.make ~seed:1L ~drop:0.2 ~crash:0.3 ~recovery:0.5
      ~partitions:[ (1, 4, 2) ]
      ()
  in
  let other = Faults.reseed base ~seed:2L in
  checkb "same shape" true
    (Faults.describe other
    = "faults(seed=2 drop=0.2 crash=0.3(by round 64) recovery=0.5(within 4) \
       partition[1,4)x2)");
  (* Fresh verdict stream: the two seeds disagree somewhere. *)
  let pattern plan =
    List.init 100 (fun i ->
        Faults.dropped plan ~round:(i / 10) ~src:(i mod 10) ~dst:((i + 1) mod 10))
  in
  checkb "fresh verdicts" true (pattern base <> pattern other)

(* --- partition-then-heal exactness (satellite S4) ---------------------- *)

let test_jvv_exact_under_partition_heal () =
  (* A partition in force for the first attempts, healed afterwards: the
     supervised JVV sampler must push most trials through on a post-heal
     retry, and conditioned on success the output is still exactly mu. *)
  let n = 6 in
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let epsilon = Jvv.theory_epsilon inst in
  let policy = Resilient.policy ~retry_budget:4 () in
  let trials = 400 in
  let results =
    Par.run_trials ~n:trials ~seed:920L (fun rng ->
        let faults =
          Faults.make ~seed:(Rng.bits64 rng) ~drop:0.02
            ~partitions:[ (0, 4, 2) ]
            ()
        in
        let s =
          Jvv.run_local_resilient oracle ~epsilon ~policy ~faults inst
            ~seed:(Rng.bits64 rng)
        in
        (s.Jvv.sresult.Jvv.success, s.Jvv.sresult.Jvv.y))
  in
  let successes =
    Array.fold_left (fun a (ok, _) -> if ok then a + 1 else a) 0 results
  in
  checkb "the heal restores availability" true (successes > trials / 2);
  let emp = Empirical.create () in
  Array.iter (fun (ok, y) -> if ok then Empirical.add emp y) results;
  Test_statistics.check_gof "JVV successes under partition-then-heal vs mu"
    ~significance:0.001 emp (Exact.joint inst)

let suite =
  [
    Alcotest.test_case "crash intervals: stop vs recovery" `Quick
      test_crash_interval_semantics;
    Alcotest.test_case "recovery restores liveness (catch-up charged)" `Quick
      test_recovery_restores_liveness;
    Alcotest.test_case "checkpoint restored across phases" `Quick
      test_checkpoint_restore_across_phases;
    Alcotest.test_case "quarantine + conservation law" `Quick
      test_quarantine_and_conservation;
    Alcotest.test_case "digest collisions deliver silently" `Quick
      test_digest_collision_delivers_silently;
    Alcotest.test_case "flooded views stay truthful under corruption" `Quick
      test_flood_views_stay_truthful_under_corruption;
    Alcotest.test_case "partitions cut cross-side edges then heal" `Quick
      test_partition_cuts_and_heals;
    Alcotest.test_case "recovery trace events" `Quick test_recovery_trace_events;
    Alcotest.test_case "permanent failures stop immediately" `Quick
      test_permanent_failure_stops_immediately;
    Alcotest.test_case "transient then permanent" `Quick
      test_transient_then_permanent;
    Alcotest.test_case "sampler: crash-stop permanent, recovery waited out"
      `Quick test_sampler_classifies_crash_stop_vs_recovery;
    Alcotest.test_case "budget exhaustion spends everything" `Quick
      test_budget_exhaustion_spends_everything;
    Alcotest.test_case "all crashed with recovery pending is transient" `Quick
      test_all_crashed_with_recovery_pending_is_transient;
    QCheck_alcotest.to_alcotest qcheck_merge_views_lattice;
    QCheck_alcotest.to_alcotest qcheck_merge_matches_fault_free_flood;
    Alcotest.test_case "describe snapshots" `Quick test_describe_snapshots;
    Alcotest.test_case "reseed keeps shape, refreshes verdicts" `Quick
      test_reseed_keeps_shape;
    Alcotest.test_case "JVV exact under partition-then-heal" `Slow
      test_jvv_exact_under_partition_heal;
  ]
