(* Failure injection, on two axes.

   Oracle axis: feed the reductions a deliberately lying inference oracle
   and check that the guarantees degrade exactly the way the theorems say
   — gradually for the chain-rule sampler (Theorem 3.2's n·delta coupling
   bound), and loudly for JVV (clamps flag the moment the slack stops
   covering the oracle error, instead of silent bias).

   Network axis: inject message drops and crash-stops into the LOCAL
   runtime (Ls_local.Faults) and check the degradation contract — the
   zero-fault plan is bit-identical to the reliable runtime, faults cost
   availability but never correctness (conditional exactness survives),
   and the retry/backoff supervisor (Ls_local.Resilient) recovers what a
   bounded budget can recover while reporting what it cannot. *)

module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Models = Ls_gibbs.Models
module Graph = Ls_graph.Graph
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Empirical = Ls_dist.Empirical
module Network = Ls_local.Network
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient

open Ls_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let ident_order n = Array.init n (fun i -> i)

(* An oracle with a controlled, deterministic, SUPPORT-PRESERVING lie:
   nonzero probabilities get tilted by (1 ± delta) and renormalized, so the
   per-site TV error is at most delta but the chain rule never steps onto
   an infeasible value.  Radius n keeps its locality contract honest. *)
let lying_oracle ~delta inst0 =
  let exact = Inference.exact inst0 in
  {
    Inference.radius = exact.Inference.radius;
    infer =
      (fun inst v ->
        let d = exact.Inference.infer inst v in
        if Instance.is_pinned inst v then d
        else
          Dist.make (Dist.size d) (fun c ->
              let tilt = if c mod 2 = 0 then 1. +. delta else 1. -. delta in
              Dist.prob d c *. tilt));
  }

let tv_support a b =
  let lookup sigma l = try List.assoc sigma l with Not_found -> 0. in
  0.5
  *. (List.fold_left (fun acc (s, p) -> acc +. Float.abs (p -. lookup s a)) 0. b
     +. List.fold_left
          (fun acc (s, p) -> if List.mem_assoc s b then acc else acc +. p)
          0. a)

let test_sampler_degrades_linearly () =
  let n = 6 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let exact = Exact.joint inst in
  let out delta =
    tv_support
      (Sequential_sampler.output_distribution (lying_oracle ~delta inst) inst
         ~order:(ident_order n))
      exact
  in
  let e0 = out 0. and e1 = out 0.02 and e2 = out 0.08 in
  checkb "no lie, no error" true (e0 < 1e-12);
  checkb "monotone in the lie" true (e1 < e2);
  (* The Theorem 3.2 coupling bound: output TV <= n * per-site TV.  The
     per-site TV of the mixture is at most delta. *)
  checkb "within n*delta" true (e1 <= (float_of_int n *. 0.02) +. 1e-9);
  checkb "within n*delta (larger lie)" true (e2 <= (float_of_int n *. 0.08) +. 1e-9)

let test_jvv_clamps_flag_insufficient_slack () =
  let n = 6 in
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.) in
  let delta = 0.1 in
  let oracle = lying_oracle ~delta inst in
  let order = ident_order n in
  (* Slack far below the lie: clamps must fire, and the certificate of
     exactness (zero clamps) is correctly withheld. *)
  let tight = Jvv.output_distribution oracle ~epsilon:1e-4 inst ~order in
  checkb "clamps detected" true (tight.Jvv.total_clamps > 0);
  (* Slack above the lie: no clamps, and exactness returns despite the
     biased oracle — the whole point of Theorem 4.2. *)
  let generous = Jvv.output_distribution oracle ~epsilon:0.12 inst ~order in
  checkb "no clamps with generous slack" true (generous.Jvv.total_clamps = 0);
  checkb "exact despite the lie" true
    (tv_support generous.Jvv.conditional (Exact.joint inst) < 1e-9)

let test_boosting_survives_small_lies () =
  (* Lemma 4.1 tolerates additive error eps/(5qn): a small lie must still
     produce finite multiplicative error; zero-probability values exactly. *)
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 8) ~lambda:1.) [ (1, 1) ]
  in
  let oracle = lying_oracle ~delta:0.005 inst in
  let exact = Option.get (Exact.marginal inst 0) in
  let boosted = Boosting.boost oracle inst in
  let b = boosted.Inference.infer inst 0 in
  checkb "finite multiplicative error" true (Dist.mult_err b exact < 0.05);
  checkb "hard zero preserved" true (Dist.prob b 1 = 0.)

let test_glauber_vs_biased_sampler () =
  (* Sanity for the baseline comparisons: the (unbiased) Glauber chain beats
     a chain-rule sampler driven by a lying oracle, given enough sweeps. *)
  let n = 5 in
  let inst = Instance.unpinned (Models.hardcore (Generators.path n) ~lambda:1.) in
  let exact = Exact.joint inst in
  let biased =
    tv_support
      (Sequential_sampler.output_distribution (lying_oracle ~delta:0.15 inst) inst
         ~order:(ident_order n))
      exact
  in
  let rng = Ls_rng.Rng.create 3L in
  let emp = Ls_dist.Empirical.create () in
  List.iter (Ls_dist.Empirical.add emp)
    (Glauber.sample_many inst ~sweeps:50 ~thin:5 ~count:20_000 ~rng);
  let glauber_err = Ls_dist.Empirical.tv_against emp exact in
  checkb "biased sampler measurably off" true (biased > 0.05);
  checkb "glauber below the biased sampler" true (glauber_err < biased)

(* --- network-fault axis ------------------------------------------------ *)

let views_equal (a : 'i Network.view) (b : 'i Network.view) =
  a.Network.vertices = b.Network.vertices
  && Graph.edges a.Network.subgraph = Graph.edges b.Network.subgraph
  && a.Network.view_inputs = b.Network.view_inputs
  && a.Network.dist_center = b.Network.dist_center
  && a.Network.center_local = b.Network.center_local

let test_zero_fault_flood_matches_gather () =
  (* Regression for the fault layer's bit-identity contract: under the
     explicit zero-fault plan, flooding still reconstructs exactly the
     views gather grants — the plan's presence must not perturb anything. *)
  let plan = Faults.make ~seed:17L () in
  checkb "all-zero plan is the zero-fault plan" true (Faults.is_none plan);
  List.iter
    (fun g ->
      let n = Graph.n g in
      let inputs = Array.init n (fun v -> v * 3) in
      let net = Network.create ~faults:plan g ~inputs ~seed:18L in
      List.iter
        (fun radius ->
          let flooded = Network.flood_views net ~radius in
          for v = 0 to n - 1 do
            checkb "zero-fault flooded view equals gather" true
              (views_equal flooded.(v) (Network.gather net ~v ~radius));
            checkb "complete" true (Network.view_is_complete net flooded.(v))
          done)
        [ 0; 1; 2; 3 ])
    [ Generators.path 6; Generators.cycle 7; Generators.grid 3 3 ]

let test_drop_faults_detected () =
  (* Heavy message loss must leave some flooded ball incomplete, and
     view_is_complete must say so; gather stays fault-oblivious. *)
  let g = Generators.cycle 8 in
  let faults = Faults.make ~seed:5L ~drop:0.5 () in
  let net = Network.create ~faults g ~inputs:(Array.make 8 ()) ~seed:6L in
  let flooded = Network.flood_views net ~radius:2 in
  let incomplete =
    Array.exists (fun v -> not (Network.view_is_complete net v)) flooded
  in
  checkb "drops stall some ball collection" true incomplete;
  for v = 0 to 7 do
    checkb "gather is fault-oblivious" true
      (Network.view_is_complete net (Network.gather net ~v ~radius:2))
  done

let test_crash_faults_freeze_nodes () =
  (* crash=1 with horizon 1 crashes everyone at round 0: nobody emits, so
     every flooded view degenerates to the bare center. *)
  let g = Generators.cycle 6 in
  let faults = Faults.make ~seed:7L ~crash:1.0 ~crash_horizon:1 () in
  let net = Network.create ~faults g ~inputs:(Array.make 6 ()) ~seed:8L in
  let flooded = Network.flood_views net ~radius:2 in
  for v = 0 to 5 do
    checkb "crashed" true (Network.crashed net v);
    checki "view is the bare center" 1
      (Array.length flooded.(v).Network.vertices);
    checkb "incomplete" false (Network.view_is_complete net flooded.(v))
  done

let test_fault_plan_deterministic () =
  (* Verdicts are pure functions of (seed, coordinates): two plans with the
     same seed agree everywhere, a different seed disagrees somewhere. *)
  let a = Faults.make ~seed:11L ~drop:0.3 () in
  let b = Faults.make ~seed:11L ~drop:0.3 () in
  let c = Faults.make ~seed:12L ~drop:0.3 () in
  let pattern plan =
    List.init 200 (fun i ->
        Faults.dropped plan ~round:(i / 20) ~src:(i mod 20) ~dst:(i mod 7))
  in
  checkb "same seed, same verdicts" true (pattern a = pattern b);
  checkb "different seed, different verdicts" true (pattern a <> pattern c)

(* One named-error test per CLI flag, against the library constructor the
   executables funnel through (same rejection text, library-level). *)
let test_fault_rate_flag_validated () =
  Alcotest.check_raises "drop > 1 rejected"
    (Invalid_argument
       "Faults.make: drop (--fault-rate) must be a probability in [0,1], got 1.5")
    (fun () -> ignore (Faults.make ~drop:1.5 ()))

let test_crash_rate_flag_validated () =
  Alcotest.check_raises "negative crash rejected"
    (Invalid_argument
       "Faults.make: crash (--crash-rate) must be a probability in [0,1], got -0.1")
    (fun () -> ignore (Faults.make ~crash:(-0.1) ()))

let test_retry_budget_flag_validated () =
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument
       "Resilient.policy: retry_budget (--retry-budget) must be >= 0, got -1")
    (fun () -> ignore (Resilient.policy ~retry_budget:(-1) ()))

let test_retry_backoff_accounting () =
  (* Two failures then success: 3 attempts, backoff 1 + 2 = 3 rounds, all
     charged; a clean report. *)
  let charged = ref 0 in
  let calls = ref 0 in
  let x, report =
    Resilient.run
      (Resilient.policy ~retry_budget:3 ~backoff_base:1 ~backoff_factor:2 ())
      ~charge:(fun r -> charged := !charged + r)
      (fun ~attempt ->
        incr calls;
        if attempt < 2 then Error "transient" else Ok attempt)
  in
  checki "succeeded on third attempt" 2 (Option.get x);
  checki "three calls" 3 !calls;
  checki "attempts reported" 3 report.Resilient.attempts;
  checkb "not degraded" false report.Resilient.degraded;
  checki "backoff 1+2 charged" 3 !charged;
  checki "backoff recorded" 3 report.Resilient.backoff_rounds;
  checki "one reason per failure" 2 (List.length report.Resilient.reasons)

let test_budget_exhaustion_degrades () =
  let x, report =
    Resilient.run
      (Resilient.policy ~retry_budget:2 ())
      (fun ~attempt:_ -> Error "hopeless")
  in
  checkb "no value" true (x = None);
  checkb "degraded" true report.Resilient.degraded;
  checki "initial try + budget" 3 report.Resilient.attempts;
  checki "every failure explained" 3 (List.length report.Resilient.reasons)

let test_collect_views_recovers () =
  (* Supervised ball collection under moderate loss: retries (fresh clock,
     fresh verdicts) must recover every view no plain flood round got, and
     the zero-fault plan must succeed on the first attempt. *)
  let g = Generators.cycle 8 in
  let policy = Resilient.policy ~retry_budget:8 () in
  let faults = Faults.make ~seed:21L ~drop:0.3 () in
  let net = Network.create ~faults g ~inputs:(Array.make 8 ()) ~seed:22L in
  let views, failed, report = Resilient.collect_views net ~policy ~radius:2 in
  checkb "recovered within budget" false report.Resilient.degraded;
  checkb "no failed nodes" true (Array.for_all not failed);
  Array.iter
    (fun v -> checkb "complete" true (Network.view_is_complete net v))
    views;
  let net0 = Network.create g ~inputs:(Array.make 8 ()) ~seed:23L in
  let _, failed0, report0 = Resilient.collect_views net0 ~policy ~radius:2 in
  checki "fault-free: one attempt" 1 report0.Resilient.attempts;
  checki "fault-free: no backoff" 0 report0.Resilient.backoff_rounds;
  checkb "fault-free: nobody fails" true (Array.for_all not failed0)

let test_resilient_sampler_degrades_gracefully () =
  (* Total message loss: no budget can save this, so the supervisor must
     return a partial result with a degraded report — not raise. *)
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let faults = Faults.make ~seed:31L ~drop:1.0 () in
  let policy = Resilient.policy ~retry_budget:2 () in
  let r = Local_sampler.sample_resilient oracle ~policy ~faults inst ~seed:32L in
  let report = Option.get r.Local_sampler.resilience in
  checkb "degraded" true report.Resilient.degraded;
  checkb "not successful" false r.Local_sampler.success;
  checkb "some nodes flagged" true (Array.exists (fun f -> f) r.Local_sampler.failed);
  checki "sigma still total" 8 (Array.length r.Local_sampler.sigma);
  checkb "budget respected" true (report.Resilient.attempts <= 3);
  checkb "rounds include backoff" true
    (r.Local_sampler.rounds > report.Resilient.backoff_rounds)

let test_resilient_sampler_reproducible () =
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let faults = Faults.make ~seed:41L ~drop:0.1 ~crash:0.05 () in
  let run () =
    let r = Local_sampler.sample_resilient oracle ~faults inst ~seed:42L in
    (r.Local_sampler.sigma, r.Local_sampler.failed, r.Local_sampler.rounds)
  in
  checkb "same seeds, same execution" true (run () = run ())

let test_jvv_exact_under_faults () =
  (* The acceptance story of the fault layer: message drops depress the
     JVV success probability, but conditioned on success the output is
     still exactly mu (the fault plan's randomness is independent of the
     payload's, so Lemma 4.8 is untouched).  GOF on the successes at the
     moderate rate; monotone success decay towards the heavy rate. *)
  let n = 6 in
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let epsilon = Jvv.theory_epsilon inst in
  let policy = Resilient.policy ~retry_budget:3 () in
  let trials = 400 in
  let run_at drop =
    Par.run_trials ~n:trials ~seed:900L (fun rng ->
        let faults = Faults.make ~seed:(Rng.bits64 rng) ~drop () in
        let s =
          Jvv.run_local_resilient oracle ~epsilon ~policy ~faults inst
            ~seed:(Rng.bits64 rng)
        in
        (s.Jvv.sresult.Jvv.success, s.Jvv.sresult.Jvv.y))
  in
  let successes results =
    Array.fold_left (fun a (ok, _) -> if ok then a + 1 else a) 0 results
  in
  let moderate = run_at 0.05 and heavy = run_at 0.2 in
  checkb "drops depress JVV success" true (successes heavy < successes moderate);
  checkb "moderate rate keeps most runs" true
    (successes moderate > trials / 2);
  let emp = Empirical.create () in
  Array.iter (fun (ok, y) -> if ok then Empirical.add emp y) moderate;
  Test_statistics.check_gof "JVV successes under faults vs exact mu"
    ~significance:0.001 emp (Exact.joint inst)

let test_delay_survives_phase_boundary () =
  (* Regression: delay=1, max_delay=1 delays EVERY copy by exactly one
     round, so a radius-1 flood delivers nothing in-phase.  Before the
     carry fix those copies silently became drops at the phase boundary;
     now they are parked and delivered to the next flood, whose views
     become complete purely from last phase's late traffic. *)
  let n = 6 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:3L ~delay:1.0 ~max_delay:1 () in
  let net = Network.create ~faults g ~inputs:(Array.init n Fun.id) ~seed:4L in
  let v1 = Network.flood_views net ~radius:1 in
  for v = 0 to n - 1 do
    checki "phase 1: everything arrives late" 1
      (Array.length v1.(v).Network.vertices)
  done;
  checkb "late copies are parked, not lost" true (Network.pending_count net > 0);
  let v2 = Network.flood_views net ~radius:1 in
  for v = 0 to n - 1 do
    checkb "phase 2: carried copies complete the ball" true
      (Network.view_is_complete net v2.(v))
  done

let test_broadcast_carry_conserves_copies () =
  (* Conservation law for a delay-only plan: every transmitted copy is
     either delivered to a merge or still parked — never lost.  (Cycle on
     5 vertices: 10 directed edges per round.) *)
  let n = 5 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:9L ~delay:0.7 ~max_delay:3 () in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:10L in
  let carrier = Network.carrier () in
  let received = ref 0 in
  let phase rounds =
    ignore
      (Network.run_broadcast net ~rounds ~carry:carrier
         ~init:(fun _ -> ())
         ~emit:(fun _ () -> ())
         ~merge:(fun _ () inbox -> received := !received + List.length inbox)
         ())
  in
  phase 2;
  phase 4;
  let sent = Network.messages net in
  checki "6 rounds x 10 directed edges transmitted" 60 sent;
  checki "every copy delivered or still parked" sent
    (!received + Network.pending_count net)

let test_collect_views_merges_partials () =
  (* Union, not max: knowledge from two flood attempts composes, so the
     merged view contains every vertex either attempt learned. *)
  let n = 10 in
  let g = Generators.cycle n in
  let faults = Faults.make ~seed:51L ~drop:0.45 () in
  let net = Network.create ~faults g ~inputs:(Array.make n ()) ~seed:52L in
  let a = Network.flood_views net ~radius:2 in
  let b = Network.flood_views net ~radius:2 in
  let mem view o = Array.exists (( = ) o) view.Network.vertices in
  let strictly_bigger = ref false in
  Array.iteri
    (fun v bv ->
      let m = Network.merge_views net a.(v) bv in
      Array.iter
        (fun o -> checkb "merged contains attempt 1" true (mem m o))
        a.(v).Network.vertices;
      Array.iter
        (fun o -> checkb "merged contains attempt 2" true (mem m o))
        bv.Network.vertices;
      if
        Array.length m.Network.vertices > Array.length a.(v).Network.vertices
        && Array.length m.Network.vertices > Array.length bv.Network.vertices
      then strictly_bigger := true)
    b;
  (* At drop 0.45 some node's two partial views are incomparable, which is
     exactly the case the old keep-the-larger rule lost knowledge on. *)
  checkb "some merge exceeds both operands" true !strictly_bigger;
  Alcotest.check_raises "mismatched centers rejected"
    (Invalid_argument "Network.merge_views: views differ in center or radius")
    (fun () -> ignore (Network.merge_views net a.(0) a.(1)))

let test_corruption_per_copy () =
  (* Duplicated copies draw independent corruption verdicts (satellite of
     the per-copy coordinate fix): across many (round, edge) coordinates
     the two copies must disagree somewhere. *)
  let plan = Faults.make ~seed:61L ~duplicate:1.0 ~corrupt:0.5 () in
  let differing = ref false in
  for round = 0 to 9 do
    for src = 0 to 9 do
      let dst = (src + 1) mod 10 in
      let c1 = Faults.corrupted plan ~round ~src ~dst ~copy:1 in
      let c2 = Faults.corrupted plan ~round ~src ~dst ~copy:2 in
      if c1 <> c2 then differing := true
    done
  done;
  checkb "copies draw independent verdicts" true !differing;
  (* End-to-end through the executor: with dup=1 and corrupt=0.5 some
     receiver must see one corrupted and one pristine copy of the same
     message — impossible under the old all-or-none verdict. *)
  let n = 8 in
  let g = Generators.cycle n in
  let net =
    Network.create ~faults:plan g ~inputs:(Array.make n ()) ~seed:62L
  in
  let mixed = ref false in
  ignore
    (Network.run_broadcast net ~rounds:3
       ~corrupt:(fun ~round:_ ~src:_ ~dst:_ m -> m + 1000)
       ~init:(fun v -> v)
       ~emit:(fun v _ -> v)
       ~merge:(fun _ s inbox ->
         List.iter
           (fun m ->
             let src = m mod 1000 in
             if List.mem src inbox && List.mem (src + 1000) inbox then
               mixed := true)
           inbox;
         s)
       ());
  checkb "a duplicate pair split verdicts in flight" true !mixed

let test_jvv_exact_under_delays () =
  (* Delay-only companion to test_jvv_exact_under_faults: after the
     boundary fix a delayed record is late, never lost, so availability
     stays high and — as for drops — conditioned on success the output law
     is exactly mu. *)
  let n = 6 in
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle n) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let epsilon = Jvv.theory_epsilon inst in
  let policy = Resilient.policy ~retry_budget:3 () in
  let trials = 400 in
  let results =
    Par.run_trials ~n:trials ~seed:910L (fun rng ->
        let faults =
          Faults.make ~seed:(Rng.bits64 rng) ~delay:0.3 ~max_delay:2 ()
        in
        let s =
          Jvv.run_local_resilient oracle ~epsilon ~policy ~faults inst
            ~seed:(Rng.bits64 rng)
        in
        (s.Jvv.sresult.Jvv.success, s.Jvv.sresult.Jvv.y))
  in
  let successes =
    Array.fold_left (fun a (ok, _) -> if ok then a + 1 else a) 0 results
  in
  checkb "delays cost availability only mildly" true (successes > trials / 2);
  let emp = Empirical.create () in
  Array.iter (fun (ok, y) -> if ok then Empirical.add emp y) results;
  Test_statistics.check_gof "JVV successes under delay-only faults vs exact mu"
    ~significance:0.001 emp (Exact.joint inst)

let suite =
  [
    Alcotest.test_case "sampler degrades linearly" `Quick test_sampler_degrades_linearly;
    Alcotest.test_case "JVV clamps flag bad slack" `Quick
      test_jvv_clamps_flag_insufficient_slack;
    Alcotest.test_case "boosting survives small lies" `Quick
      test_boosting_survives_small_lies;
    Alcotest.test_case "glauber vs biased sampler" `Slow test_glauber_vs_biased_sampler;
    Alcotest.test_case "zero-fault flood = gather" `Quick
      test_zero_fault_flood_matches_gather;
    Alcotest.test_case "drop faults detected" `Quick test_drop_faults_detected;
    Alcotest.test_case "crash faults freeze nodes" `Quick
      test_crash_faults_freeze_nodes;
    Alcotest.test_case "fault plan deterministic" `Quick
      test_fault_plan_deterministic;
    Alcotest.test_case "--fault-rate validated" `Quick
      test_fault_rate_flag_validated;
    Alcotest.test_case "--crash-rate validated" `Quick
      test_crash_rate_flag_validated;
    Alcotest.test_case "--retry-budget validated" `Quick
      test_retry_budget_flag_validated;
    Alcotest.test_case "retry/backoff accounting" `Quick
      test_retry_backoff_accounting;
    Alcotest.test_case "budget exhaustion degrades" `Quick
      test_budget_exhaustion_degrades;
    Alcotest.test_case "supervised ball collection recovers" `Quick
      test_collect_views_recovers;
    Alcotest.test_case "resilient sampler degrades gracefully" `Quick
      test_resilient_sampler_degrades_gracefully;
    Alcotest.test_case "resilient sampler reproducible" `Quick
      test_resilient_sampler_reproducible;
    Alcotest.test_case "JVV exact under faults" `Slow test_jvv_exact_under_faults;
    Alcotest.test_case "delay survives phase boundary" `Quick
      test_delay_survives_phase_boundary;
    Alcotest.test_case "broadcast carry conserves copies" `Quick
      test_broadcast_carry_conserves_copies;
    Alcotest.test_case "collect_views merges partial knowledge" `Quick
      test_collect_views_merges_partials;
    Alcotest.test_case "corruption verdicts are per copy" `Quick
      test_corruption_per_copy;
    Alcotest.test_case "JVV exact under delay-only faults" `Slow
      test_jvv_exact_under_delays;
  ]
