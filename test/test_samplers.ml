(* Tests for the chain-rule sampler (Theorem 3.2), its LOCAL compilation,
   the sampling->inference reduction (Theorem 3.4), and Glauber dynamics. *)

module Graph = Ls_graph.Graph
module Generators = Ls_graph.Generators
module Dist = Ls_dist.Dist
module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Models = Ls_gibbs.Models
module Config = Ls_gibbs.Config

open Ls_core

let checkb = Alcotest.check Alcotest.bool

let ident_order n = Array.init n (fun i -> i)

(* --- sequential (chain-rule) sampler --- *)

let test_exact_oracle_gives_exact_distribution () =
  (* With exact marginals, the chain-rule output distribution IS mu^tau:
     compare symbolically, no sampling noise. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 5) ~lambda:1.4) in
  let oracle = Inference.exact inst in
  let out = Sequential_sampler.output_distribution oracle inst ~order:(ident_order 5) in
  let exact = Exact.joint inst in
  List.iter
    (fun (sigma, p) ->
      let p' = try List.assoc sigma out with Not_found -> 0. in
      checkb "probabilities match" true (Float.abs (p -. p') < 1e-9))
    exact;
  checkb "same support size" true (List.length out = List.length exact)

let test_order_invariance_with_exact_oracle () =
  (* The chain rule gives the same joint under any ordering when marginals
     are exact. *)
  let inst = Instance.unpinned (Models.coloring (Generators.path 4) ~q:3) in
  let oracle = Inference.exact inst in
  let a = Sequential_sampler.output_distribution oracle inst ~order:[| 0; 1; 2; 3 |] in
  let b = Sequential_sampler.output_distribution oracle inst ~order:[| 3; 1; 0; 2 |] in
  List.iter
    (fun (sigma, p) ->
      let p' = try List.assoc sigma b with Not_found -> 0. in
      checkb "order invariant" true (Float.abs (p -. p') < 1e-9))
    a

let test_sampler_respects_pinning () =
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 6) ~lambda:1.) [ (2, 1) ]
  in
  let oracle = Inference.exact inst in
  let rng = Rng.create 3L in
  for _i = 1 to 50 do
    let sigma = Sequential_sampler.sample oracle inst ~order:(ident_order 6) ~rng in
    checkb "pin kept" true (sigma.(2) = 1);
    checkb "valid independent set" true (sigma.(1) = 0 && sigma.(3) = 0)
  done

let test_sampler_empirical_tv () =
  let inst = Instance.unpinned (Models.hardcore (Generators.path 4) ~lambda:1.) in
  let oracle = Inference.exact inst in
  let emp =
    Empirical.collect ~n:20_000 ~seed:5L (fun rng ->
        Sequential_sampler.sample oracle inst ~order:(ident_order 4) ~rng)
  in
  Test_statistics.check_gof "chain-rule sampler with the exact oracle"
    ~significance:0.001 emp (Exact.joint inst)

let test_approx_oracle_sampler_tv_bound () =
  (* Theorem 3.2 coupling: output TV <= n * per-site TV error. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:0.7) in
  let oracle = Inference.ssm_oracle ~t:3 inst in
  let out = Sequential_sampler.output_distribution oracle inst ~order:(ident_order 8) in
  let exact = Exact.joint inst in
  let tv =
    0.5
    *. List.fold_left
         (fun acc (sigma, p) ->
           let p' = try List.assoc sigma out with Not_found -> 0. in
           acc +. Float.abs (p -. p'))
         0. exact
  in
  checkb "small total-variation error" true (tv < 0.05)

let test_sample_slocal_matches_plain () =
  (* The locality-enforcing SLOCAL run must complete (certifying locality)
     and produce feasible samples. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 10) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let sigma, locality =
    Sequential_sampler.sample_slocal oracle inst ~order:(ident_order 10) ~seed:11L
  in
  checkb "feasible output" true (Ls_gibbs.Spec.weight inst.Instance.spec sigma > 0.);
  checkb "locality = oracle radius" true (locality = oracle.Inference.radius)

let test_chain_rule_probability () =
  let inst = Instance.unpinned (Models.hardcore (Generators.path 3) ~lambda:1.) in
  let oracle = Inference.exact inst in
  let order = ident_order 3 in
  (* Sum over all configurations must be 1. *)
  let total = ref 0. in
  let sigma = Array.make 3 0 in
  for a = 0 to 1 do
    for b = 0 to 1 do
      for c = 0 to 1 do
        sigma.(0) <- a;
        sigma.(1) <- b;
        sigma.(2) <- c;
        total := !total +. Sequential_sampler.chain_rule_probability oracle inst ~order sigma
      done
    done
  done;
  checkb "chain rule sums to one" true (Float.abs (!total -. 1.) < 1e-9)

let test_order_validation () =
  let inst = Instance.unpinned (Models.hardcore (Generators.path 3) ~lambda:1.) in
  let oracle = Inference.exact inst in
  Alcotest.check_raises "duplicate vertex"
    (Invalid_argument "Sequential_sampler: order is not a permutation") (fun () ->
      ignore
        (Sequential_sampler.sample oracle inst ~order:[| 0; 0; 1 |]
           ~rng:(Rng.create 1L)))

(* --- LOCAL sampler (Theorem 3.2 compiled via Lemma 3.1) --- *)

let test_local_sampler_feasible_and_accounted () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 12) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let result = Local_sampler.sample oracle inst ~seed:21L in
  checkb "feasible" true (Ls_gibbs.Spec.weight inst.Instance.spec result.Local_sampler.sigma > 0.);
  checkb "rounds charged" true (result.Local_sampler.rounds > 0)

let test_local_sampler_empirical () =
  (* Conditioned on success the LOCAL sampler's output must be close to the
     target distribution.  Trials fan out over domains; per-trial seeds come
     from the engine's seed-split streams, so the verdict is domain-count
     invariant. *)
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 5) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:3 inst in
  let results =
    Par.run_trials ~n:4_000 ~seed:1000L (fun rng ->
        Local_sampler.sample oracle inst ~seed:(Rng.bits64 rng))
  in
  let emp = Empirical.create () in
  let successes = ref 0 in
  Array.iter
    (fun r ->
      if r.Local_sampler.success then begin
        incr successes;
        Empirical.add emp r.Local_sampler.sigma
      end)
    results;
  checkb "mostly successful" true (!successes > 3_600);
  checkb "close to target" true (Empirical.tv_against emp (Exact.joint inst) < 0.05)

let test_local_sampler_deterministic_in_seed () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:1.) in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let a = Local_sampler.sample oracle inst ~seed:5L in
  let b = Local_sampler.sample oracle inst ~seed:5L in
  checkb "reproducible" true (a.Local_sampler.sigma = b.Local_sampler.sigma)

(* --- sampling => inference (Theorem 3.4) --- *)

let test_marginal_of_chain_sampler () =
  let inst = Instance.unpinned (Models.hardcore (Generators.cycle 6) ~lambda:1.1) in
  let oracle = Inference.ssm_oracle ~t:3 inst in
  let m = Reductions.marginal_of_chain_sampler oracle inst ~order:(ident_order 6) 2 in
  let exact = Option.get (Exact.marginal inst 2) in
  checkb "reconstructed marginal close" true (Dist.tv m exact < 0.03)

let test_monte_carlo_marginal () =
  let inst = Instance.unpinned (Models.hardcore (Generators.path 5) ~lambda:1.) in
  let oracle = Inference.exact inst in
  let rng = Rng.create 31L in
  let sample rng =
    Some (Sequential_sampler.sample oracle inst ~order:(ident_order 5) ~rng)
  in
  let m = Option.get (Reductions.monte_carlo_marginal ~sample ~q:2 ~samples:20_000 ~rng 2) in
  let exact = Option.get (Exact.marginal inst 2) in
  checkb "monte carlo close" true (Dist.tv m exact < 0.02)

let test_log_partition_via_sampling () =
  (* Counting from a black-box sampler (the classical JVV direction). *)
  let inst = Instance.unpinned (Models.hardcore (Generators.path 5) ~lambda:1.) in
  let oracle = Inference.exact inst in
  let order = ident_order 5 in
  let sample inst rng = Some (Sequential_sampler.sample oracle inst ~order ~rng) in
  let rng = Rng.create 71L in
  let est =
    Reductions.log_partition_via_sampling ~sample inst ~order ~samples:4_000 ~rng
  in
  let truth = log (Exact.partition inst) in
  checkb "sampled counting close" true (Float.abs (est -. truth) < 0.1)

let test_monte_carlo_all_failures () =
  let rng = Rng.create 33L in
  checkb "none" true
    (Reductions.monte_carlo_marginal ~sample:(fun _ -> None) ~q:2 ~samples:10 ~rng 0
    = None)

(* --- JVV statistical exactness (Theorem 4.2, Monte-Carlo side) --- *)

let test_jvv_empirical_exactness () =
  (* Lemma 4.8: conditioned on success with zero clamps, the JVV output is
     exactly mu.  The symbolic machine-precision check lives in
     test_jvv.ml; here the claim additionally faces a chi-square
     goodness-of-fit test over 20k domain-parallel trials against the
     enumerated Gibbs distribution, at an explicit significance level. *)
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle 7) ~lambda:1.3)
  in
  let oracle = Inference.exact inst in
  let order = ident_order 7 in
  let epsilon = 1e-6 in
  let trials = 20_000 in
  let results =
    Par.run_trials ~n:trials ~seed:97L (fun rng ->
        Jvv.run oracle ~epsilon inst ~order ~rng)
  in
  let emp = Empirical.create () in
  let clamps = ref 0 in
  Array.iter
    (fun r ->
      clamps := !clamps + r.Jvv.clamped;
      if r.Jvv.success then Empirical.add emp r.Jvv.y)
    results;
  Alcotest.check Alcotest.int "no clamps with the exact oracle" 0 !clamps;
  checkb "success probability ~1 at epsilon=1e-6" true
    (Empirical.total emp > trials * 9 / 10);
  Test_statistics.check_gof "JVV conditional law vs enumerated Gibbs"
    ~significance:0.001 emp (Exact.joint inst)

(* --- Glauber dynamics baseline --- *)

let test_glauber_preserves_feasibility () =
  let inst = Instance.unpinned (Models.coloring (Generators.cycle 7) ~q:3) in
  let st = Glauber.init inst in
  let rng = Rng.create 41L in
  for _i = 1 to 200 do
    Glauber.step st rng;
    checkb "always proper" true (Ls_gibbs.Spec.weight inst.Instance.spec st.Glauber.config > 0.)
  done

let test_glauber_respects_pins () =
  let inst =
    Instance.of_pins (Models.hardcore (Generators.cycle 6) ~lambda:1.) [ (0, 1) ]
  in
  let st = Glauber.init inst in
  let rng = Rng.create 43L in
  for _i = 1 to 100 do
    Glauber.sweep st rng;
    checkb "pin immutable" true (st.Glauber.config.(0) = 1)
  done

let test_glauber_converges () =
  let inst = Instance.unpinned (Models.hardcore (Generators.path 4) ~lambda:1.) in
  let rng = Rng.create 47L in
  let emp = Empirical.create () in
  List.iter (Empirical.add emp)
    (Glauber.sample_many inst ~sweeps:50 ~thin:5 ~count:20_000 ~rng);
  checkb "stationary close to target" true
    (Empirical.tv_against emp (Exact.joint inst) < 0.03)

let test_glauber_init_from_validates () =
  let inst =
    Instance.of_pins (Models.hardcore (Generators.path 3) ~lambda:1.) [ (0, 1) ]
  in
  Alcotest.check_raises "pin violation"
    (Invalid_argument "Glauber.init_from: configuration violates the pinning")
    (fun () -> ignore (Glauber.init_from inst [| 0; 0; 0 |]))

let qcheck_sequential_sampler_feasible =
  QCheck.Test.make ~name:"chain-rule samples are always feasible" ~count:30
    QCheck.(pair small_int (int_range 3 8))
    (fun (seed, n) ->
      let rng = Rng.of_int seed in
      let g = Generators.random_tree rng n in
      let inst = Instance.unpinned (Models.hardcore g ~lambda:(0.5 +. Rng.float rng)) in
      let oracle = Inference.ssm_oracle ~t:2 inst in
      let sigma =
        Sequential_sampler.sample oracle inst ~order:(Rng.permutation rng n) ~rng
      in
      Ls_gibbs.Spec.weight inst.Instance.spec sigma > 0.)

let suite =
  [
    Alcotest.test_case "exact oracle -> exact distribution" `Quick
      test_exact_oracle_gives_exact_distribution;
    Alcotest.test_case "order invariance" `Quick test_order_invariance_with_exact_oracle;
    Alcotest.test_case "pinning respected" `Quick test_sampler_respects_pinning;
    Alcotest.test_case "empirical TV" `Quick test_sampler_empirical_tv;
    Alcotest.test_case "approx oracle TV bound" `Quick test_approx_oracle_sampler_tv_bound;
    Alcotest.test_case "slocal run certifies locality" `Quick
      test_sample_slocal_matches_plain;
    Alcotest.test_case "chain-rule probability" `Quick test_chain_rule_probability;
    Alcotest.test_case "order validation" `Quick test_order_validation;
    Alcotest.test_case "LOCAL sampler runs" `Quick test_local_sampler_feasible_and_accounted;
    Alcotest.test_case "LOCAL sampler empirical" `Slow test_local_sampler_empirical;
    Alcotest.test_case "LOCAL sampler reproducible" `Quick
      test_local_sampler_deterministic_in_seed;
    Alcotest.test_case "sampling->inference exact reconstruction" `Quick
      test_marginal_of_chain_sampler;
    Alcotest.test_case "sampling->inference monte carlo" `Quick test_monte_carlo_marginal;
    Alcotest.test_case "monte carlo all-failures" `Quick test_monte_carlo_all_failures;
    Alcotest.test_case "counting from sampling" `Slow test_log_partition_via_sampling;
    Alcotest.test_case "JVV empirical exactness (chi-square)" `Slow
      test_jvv_empirical_exactness;
    Alcotest.test_case "glauber feasibility" `Quick test_glauber_preserves_feasibility;
    Alcotest.test_case "glauber pins" `Quick test_glauber_respects_pins;
    Alcotest.test_case "glauber converges" `Slow test_glauber_converges;
    Alcotest.test_case "glauber init_from validation" `Quick
      test_glauber_init_from_validates;
    QCheck_alcotest.to_alcotest qcheck_sequential_sampler_feasible;
  ]
