(* The serving layer (lib/serve): protocol codec (round trips, named
   errors, fuzz over mutated bytes — the same discipline as the Frame
   suite), the LRU cache, the batching engine (cache keys, named spec
   rejections, parity with the direct library calls, deterministic
   batches with coalescing and cache hits), the daemon end to end over a
   unix socket (twice-same-seeds bit-identity, overload verdicts under a
   tiny queue, malformed input handling), and the validated-environment
   exit-2 contract of the CLI.

   NOTE: the end-to-end tests fork a server process, and the OCaml
   runtime permanently refuses [Unix.fork] in a process that ever
   created a domain — so this suite must run before any suite that
   touches the domain pool (it is registered right after the shard
   suite in test_main, and every in-process engine call here pins
   [~domains:1], which spawns none). *)

module Rng = Ls_rng.Rng
module Par = Ls_par.Par
module Graph = Ls_graph.Graph
module Protocol = Ls_serve.Protocol
module Engine = Ls_serve.Engine
module Server = Ls_serve.Server
module Client = Ls_serve.Client
module Lru = Ls_serve.Lru
module Frame = Ls_shard.Frame
open Ls_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let req ?(id = 0) ?(op = Protocol.Sample) ?(seed = 42L) ?(graph = "cycle:12")
    ?(model = "hardcore:0.8") ?(t = 1) ?(engine = "ball") ?(trials = 1)
    ?(vertex = 0) ?(deadline_ms = 0) () =
  { Protocol.id; op; seed; graph; model; t; engine; trials; vertex; deadline_ms }

let sock_path =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ls-serve-test-%d-%d.sock" (Unix.getpid ()) !ctr)

(* Fork a daemon on a fresh unix socket; returns (address, pid).  The
   child never returns: it serves its request budget and _exits. *)
let fork_server ?queue_bound ?batch_max ?instance_cache ~max_requests () =
  let path = sock_path () in
  (try Unix.unlink path with _ -> ());
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      let cfg =
        Server.config ~address:(Server.Unix_path path) ?queue_bound ?batch_max
          ?instance_cache ~max_requests ()
      in
      ignore (Server.run ~cfg ());
      Unix._exit 0
  | pid -> (Server.Unix_path path, pid)

let connect_or_fail addr =
  match Client.connect_retry addr with
  | Ok c -> c
  | Error msg -> Alcotest.fail ("connect: " ^ msg)

let call_or_fail c r =
  match Client.call c r with
  | Ok resp -> resp.Protocol.body
  | Error msg -> Alcotest.fail ("call: " ^ msg)

(* --- protocol codec --------------------------------------------------- *)

let test_protocol_roundtrip () =
  let requests =
    [
      req ();
      req ~id:max_int ~op:Protocol.Infer ~seed:(-1L) ~graph:"grid:3x4"
        ~model:"ising:0.3:0.5" ~t:0 ~engine:"saw" ~vertex:11 ();
      req ~id:7 ~op:Protocol.Count ~model:"coloring:5" ~t:3 ();
      req ~op:Protocol.Sample ~trials:Protocol.max_trials ();
      req ~op:Protocol.Stats ~graph:"-" ~model:"-" ~engine:"-" ~t:0 ();
      req ~op:Protocol.Health ~graph:"-" ~model:"-" ~engine:"-" ~t:0 ();
    ]
  in
  List.iter
    (fun r ->
      match Protocol.decode_request_bytes (Protocol.encode_request r) with
      | Ok r' -> checkb "request round-trips" true (r = r')
      | Error e -> Alcotest.fail ("request round-trip failed: " ^ e))
    requests;
  let bodies =
    [
      Protocol.Sample_r { trials = 3; successes = 2; distinct = 2; first = [| 1; 0; 1 |] };
      Protocol.Sample_r { trials = 1; successes = 0; distinct = 0; first = [||] };
      Protocol.Infer_r { probs = [| 0.25; 0.75 |] };
      Protocol.Infer_r { probs = [||] };
      Protocol.Count_r { log_z = -12.3456789012345678 };
      Protocol.Count_r { log_z = infinity };
      Protocol.Stats_r
        {
          Protocol.st_requests = 1; st_batches = 2; st_coalesced = 3;
          st_cache_hits = 4; st_cache_misses = 5; st_evictions = 6;
          st_rejected = 7; st_expired = 10; st_snapshot_hits = 11;
          st_restarts = 12; st_max_queue = 8; st_domains = 9;
        };
      Protocol.Health_r { reasons = [] };
      Protocol.Health_r
        {
          reasons =
            [
              ("accept", "EMFILE: shedding new connections");
              ("snapshot", "snapshot write failed (3 consecutive)");
            ];
        };
      Protocol.Error_r { code = Protocol.Bad_request; message = "nope" };
      Protocol.Error_r { code = Protocol.Overloaded; message = "queue full" };
      Protocol.Error_r { code = Protocol.Unsupported; message = "" };
      Protocol.Error_r { code = Protocol.Internal; message = "boom" };
    ]
  in
  List.iteri
    (fun i body ->
      let resp = { Protocol.rid = i; body } in
      match Protocol.decode_response_bytes (Protocol.encode_response resp) with
      | Ok r' -> checkb "response round-trips" true (resp = r')
      | Error e -> Alcotest.fail ("response round-trip failed: " ^ e))
    bodies

let test_protocol_named_errors () =
  let expect_invalid what r =
    match Protocol.validate_request r with
    | Ok () -> Alcotest.fail (what ^ ": expected a validation error")
    | Error e -> checkb (what ^ " has a named reason") true (String.length e > 0)
  in
  expect_invalid "negative id" (req ~id:(-1) ());
  expect_invalid "zero trials" (req ~trials:0 ());
  expect_invalid "too many trials" (req ~trials:(Protocol.max_trials + 1) ());
  expect_invalid "negative t" (req ~t:(-1) ());
  expect_invalid "oversized t" (req ~t:(Protocol.max_t + 1) ());
  expect_invalid "negative vertex" (req ~vertex:(-1) ());
  expect_invalid "empty graph spec" (req ~graph:"" ());
  expect_invalid "oversized spec"
    (req ~graph:(String.make (Protocol.max_spec_len + 1) 'x') ());
  (* A mutated kind byte must not decode as the other message type. *)
  (match Protocol.decode_response_bytes (Protocol.encode_request (req ())) with
  | Ok _ -> Alcotest.fail "a request must not decode as a response"
  | Error e -> checkb "cross-kind decode is named" true (String.length e > 0));
  (* Correlation ids are carried redundantly (frame header + payload) and
     cross-checked. *)
  let f = Protocol.request_frame (req ~id:5 ()) in
  match Protocol.request_of_frame { f with Frame.a = 6 } with
  | Ok _ -> Alcotest.fail "id mismatch must not decode"
  | Error e -> checkb "id mismatch is named" true (contains e "mismatch")

let test_protocol_decode_fuzz () =
  (* Mirror of the Frame fuzz suite at the serve layer: single-byte
     mutations and truncations of valid request/response bytes must
     produce Ok or a named Error — never an exception, never an
     allocation driven by an unvalidated length. *)
  let rng = Rng.create 31337L in
  let fuzz enc decode =
    let n = String.length enc in
    for _ = 1 to 2_000 do
      let b = Bytes.of_string enc in
      let pos = Rng.int rng n in
      Bytes.set b pos (Char.chr (Rng.int rng 256));
      (match decode (Bytes.to_string b) with Ok _ | Error _ -> ());
      let cut = Rng.int rng (n + 1) in
      match decode (String.sub (Bytes.to_string b) 0 cut) with
      | Ok _ | Error _ -> ()
    done
  in
  fuzz
    (Protocol.encode_request
       (req ~id:17 ~op:Protocol.Infer ~graph:"grid:3x4" ~model:"ising:0.3"
          ~trials:5 ~vertex:3 ()))
    Protocol.decode_request_bytes;
  fuzz
    (Protocol.encode_response
       {
         Protocol.rid = 17;
         body =
           Protocol.Sample_r
             { trials = 4; successes = 3; distinct = 2; first = [| 1; 0; 1; 1 |] };
       })
    Protocol.decode_response_bytes;
  fuzz
    (Protocol.encode_response
       { Protocol.rid = 0; body = Protocol.Infer_r { probs = [| 0.5; 0.5 |] } })
    Protocol.decode_response_bytes;
  fuzz
    (Protocol.encode_response
       {
         Protocol.rid = 3;
         body =
           Protocol.Health_r
             { reasons = [ ("snapshot", "disk full"); ("accept", "EMFILE") ] };
       })
    Protocol.decode_response_bytes

(* --- lru -------------------------------------------------------------- *)

let test_lru () =
  let l = Lru.create ~capacity:2 in
  Lru.add l "a" 1;
  Lru.add l "b" 2;
  checki "two entries" 2 (Lru.length l);
  (* Touch "a" so "b" becomes least recent, then overflow. *)
  checkb "find refreshes" true (Lru.find l "a" = Some 1);
  Lru.add l "c" 3;
  checki "capacity held" 2 (Lru.length l);
  checki "one eviction" 1 (Lru.evictions l);
  checkb "lru entry evicted" true (Lru.find l "b" = None);
  checkb "recent entry kept" true (Lru.find l "a" = Some 1);
  checkb "new entry present" true (Lru.find l "c" = Some 3);
  (* Re-adding an existing key refreshes, never evicts. *)
  Lru.add l "a" 10;
  checki "refresh is not an eviction" 1 (Lru.evictions l);
  checkb "refresh updates the value" true (Lru.find l "a" = Some 10);
  match Lru.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 0 must be rejected"

(* --- engine ----------------------------------------------------------- *)

let test_engine_cache_keys () =
  let k r = Engine.instance_key r in
  checkb "deterministic families share keys across seeds" true
    (k (req ~seed:1L ()) = k (req ~seed:2L ()));
  checkb "random families key on the seed" true
    (k (req ~seed:1L ~graph:"tree-rand:10" ())
    <> k (req ~seed:2L ~graph:"tree-rand:10" ()));
  checkb "regular graphs are seed-sensitive" true
    (Engine.seed_sensitive "regular:16x3");
  checkb "cycle graphs are not" true (not (Engine.seed_sensitive "cycle:16"));
  checkb "distinct models get distinct keys" true
    (k (req ()) <> k (req ~model:"ising:0.3" ()));
  checkb "distinct radii get distinct keys" true (k (req ~t:1 ()) <> k (req ~t:2 ()));
  (* Injectivity across spec boundaries: a '|' inside one spec must not
     collide with the key separator (regression: raw concatenation let
     ("cycle:1|x", "y") and ("cycle:1", "x|y") share a key). *)
  checkb "keys are injective across spec boundaries" true
    (k (req ~graph:"cycle:1|x" ~model:"y" ())
    <> k (req ~graph:"cycle:1" ~model:"x|y" ()))

let test_engine_named_rejections () =
  let e = Engine.create () in
  let expect_bad what r expected_msg =
    match Engine.submit e ~domains:1 r with
    | Error (Engine.Bad_request msg) ->
        checkb (what ^ " carries the parser's words") true (msg = expected_msg)
    | _ -> Alcotest.fail (what ^ ": expected Bad_request")
  in
  (* The daemon and the CLI reject the same values with the same words. *)
  let rng = Rng.create 42L in
  let graph_err =
    match Engine.parse_graph rng "blob:9" with Error m -> m | Ok _ -> assert false
  in
  expect_bad "unknown graph" (req ~graph:"blob:9" ()) graph_err;
  let g = match Engine.parse_graph rng "cycle:12" with Ok g -> g | Error _ -> assert false in
  let model_err =
    match Engine.parse_model g "nope:1" with Error m -> m | Ok _ -> assert false
  in
  expect_bad "unknown model" (req ~model:"nope:1" ()) model_err;
  let engine_err =
    let inst =
      match Engine.parse_model g "hardcore:0.8" with
      | Ok m -> Instance.unpinned m.Engine.spec
      | Error _ -> assert false
    in
    match Engine.make_oracle ~engine:"warp" ~t:1 inst with
    | Error m -> m
    | Ok _ -> assert false
  in
  expect_bad "unknown engine" (req ~engine:"warp" ()) engine_err;
  (match Engine.submit e ~domains:1 (req ~op:Protocol.Infer ~vertex:12 ()) with
  | Error (Engine.Bad_request msg) ->
      checkb "vertex range is named" true (contains msg "out of range")
  | _ -> Alcotest.fail "oversized vertex: expected Bad_request");
  (* The per-request graph size cap. *)
  let tiny = Engine.create ~max_vertices:8 () in
  match Engine.submit tiny ~domains:1 (req ()) with
  | Error (Engine.Bad_request msg) -> checkb "size cap is named" true (contains msg "cap")
  | _ -> Alcotest.fail "graph over the cap: expected Bad_request"

let test_engine_parity_with_library () =
  (* A serve request must compute exactly what the direct library calls
     compute: same graph/model derivation, same per-trial seed split as
     the CLI's sample_many, same oracle. *)
  let seed = 1234L in
  let rng = Rng.create seed in
  let g = match Engine.parse_graph rng "cycle:12" with Ok g -> g | Error _ -> assert false in
  let m = match Engine.parse_model g "hardcore:0.8" with Ok m -> m | Error _ -> assert false in
  let inst = Instance.unpinned m.Engine.spec in
  let oracle =
    match Engine.make_oracle ~engine:"ball" ~t:1 inst with
    | Ok o -> o
    | Error _ -> assert false
  in
  let trials = 5 in
  let expected =
    Array.map
      (fun r ->
        let res = Local_sampler.sample oracle inst ~seed:(Rng.bits64 r) in
        (res.Local_sampler.success, res.Local_sampler.sigma))
      (Rng.streams seed trials)
  in
  let e = Engine.create () in
  (match Engine.submit e ~domains:1 (req ~seed ~trials ()) with
  | Ok (Protocol.Sample_r { trials = t'; successes; first; _ }) ->
      checki "trials echoed" trials t';
      checki "successes match the direct trials" successes
        (Array.fold_left (fun acc (ok, _) -> if ok then acc + 1 else acc) 0 expected);
      let expected_first =
        match Array.find_opt fst expected with Some (_, y) -> y | None -> [||]
      in
      checkb "first sample is bit-identical" true (first = expected_first)
  | _ -> Alcotest.fail "sample parity: expected Sample_r");
  (match Engine.submit e ~domains:1 (req ~op:Protocol.Infer ~seed ~vertex:3 ()) with
  | Ok (Protocol.Infer_r { probs }) ->
      checkb "marginal is bit-identical" true
        (probs = Array.copy (oracle.Inference.infer inst 3 :> float array))
  | _ -> Alcotest.fail "infer parity: expected Infer_r");
  match Engine.submit e ~domains:1 (req ~op:Protocol.Count ~seed ()) with
  | Ok (Protocol.Count_r { log_z }) ->
      let order = Array.init (Instance.n inst) (fun i -> i) in
      checkb "ln Z is bit-identical" true
        (log_z = Reductions.estimate_log_partition oracle inst ~order)
  | _ -> Alcotest.fail "count parity: expected Count_r"

let mixed_batch =
  [
    req ~id:0 ~seed:5L ~trials:3 ();
    req ~id:1 ~op:Protocol.Infer ~seed:9L ~graph:"path:9" ~model:"ising:0.4" ~vertex:2 ();
    req ~id:2 ~seed:5L ~trials:3 ();  (* coalesces (and shares plans) with id 0 *)
    req ~id:3 ~op:Protocol.Count ~seed:5L ();
    req ~id:4 ~model:"nope:1" ();  (* named rejection, isolated to this id *)
    req ~id:5 ~graph:"tree:2x3" ~model:"coloring:4" ~seed:7L ~trials:2 ();
  ]

let test_engine_batch_determinism () =
  (* Two fresh engines, the same batch: identical results, including the
     error entries and the hit/miss accounting. *)
  let run () =
    let e = Engine.create () in
    let r1 = Engine.submit_batch e ~domains:1 mixed_batch in
    let r2 = Engine.submit_batch e ~domains:1 mixed_batch in
    (r1, r2, Engine.stats e)
  in
  let a1, a2, sa = run () in
  let b1, b2, sb = run () in
  checkb "fresh-engine batches are bit-identical" true (a1 = b1);
  checkb "warm-engine batches are bit-identical" true (a2 = b2);
  checkb "warm results equal cold results" true (a1 = a2);
  checkb "counters are a pure function of the stream" true (sa = sb);
  checkb "the bad request stays isolated" true
    (match List.nth a1 4 with Error (Engine.Bad_request _) -> true | _ -> false);
  checkb "good requests in the same batch still answer" true
    (match List.nth a1 5 with Ok (Protocol.Sample_r _) -> true | _ -> false);
  (* Batching accounting: id 2 coalesced onto id 0's compiled instance
     (and the bad request memoized), and the second submit hit caches. *)
  checkb "coalescing counted" true (sa.Protocol.st_coalesced >= 2);
  checkb "warm submit produced cache hits" true (sa.Protocol.st_cache_hits > 0);
  checki "requests counted" (2 * List.length mixed_batch) sa.Protocol.st_requests;
  checki "batches counted" 2 sa.Protocol.st_batches

let test_engine_duplicate_ids () =
  (* Each client numbers its requests independently, so one server batch
     can hold several requests sharing an id; every slot must keep its
     own body (regression: stage-5 bodies were keyed by the client id,
     so a duplicate silently overwrote another client's result). *)
  let a = req ~id:3 ~seed:5L ~trials:3 () in
  let b = req ~id:3 ~seed:9L ~trials:2 ~model:"ising:0.3" () in
  let batch = Engine.submit_batch (Engine.create ()) ~domains:1 [ a; b ] in
  let solo r = Engine.submit (Engine.create ()) ~domains:1 r in
  checkb "first slot answers its own request" true (List.nth batch 0 = solo a);
  checkb "second slot answers its own request" true (List.nth batch 1 = solo b)

let test_engine_eviction_pressure () =
  (* An instance cache of 1 under alternating models must evict and the
     stats must say so — and the answers must not change. *)
  let e = Engine.create ~instance_cache:1 () in
  let small = Engine.create () in
  let alternating =
    [ req ~id:0 (); req ~id:1 ~model:"ising:0.3" (); req ~id:2 (); req ~id:3 ~model:"ising:0.3" () ]
  in
  let tight = List.map (fun r -> Engine.submit e ~domains:1 r) alternating in
  let roomy = List.map (fun r -> Engine.submit small ~domains:1 r) alternating in
  checkb "eviction pressure never changes answers" true (tight = roomy);
  checkb "evictions metered" true ((Engine.stats e).Protocol.st_evictions > 0);
  checki "no evictions with room" 0 (Engine.stats small).Protocol.st_evictions

(* --- the daemon end to end -------------------------------------------- *)

let e2e_requests =
  [
    req ~id:0 ~seed:5L ~trials:3 ();
    req ~id:1 ~op:Protocol.Infer ~seed:9L ~graph:"path:9" ~model:"ising:0.4" ~vertex:2 ();
    req ~id:2 ~op:Protocol.Count ~seed:5L ();
    req ~id:3 ~graph:"tree:2x3" ~model:"coloring:4" ~seed:7L ~trials:2 ();
  ]

let test_server_end_to_end () =
  let n = List.length e2e_requests in
  (* Budget: two identical passes plus one stats probe. *)
  let addr, pid = fork_server ~max_requests:((2 * n) + 1) () in
  let c = connect_or_fail addr in
  let pass () = List.map (fun r -> call_or_fail c r) e2e_requests in
  let first = pass () in
  let second = pass () in
  let stats_body =
    call_or_fail c
      (req ~id:99 ~op:Protocol.Stats ~graph:"-" ~model:"-" ~engine:"-" ~t:0 ())
  in
  Client.close c;
  ignore (Unix.waitpid [] pid);
  checkb "same request bytes, same response bytes" true (first = second);
  List.iter
    (fun body ->
      checkb "every op answered with its body" true
        (match body with
        | Protocol.Sample_r _ | Protocol.Infer_r _ | Protocol.Count_r _ -> true
        | _ -> false))
    first;
  match stats_body with
  | Protocol.Stats_r st ->
      checki "daemon answered every request" ((2 * n) + 1) st.Protocol.st_requests;
      checkb "the second pass hit the caches" true (st.Protocol.st_cache_hits >= n);
      checki "nothing rejected" 0 st.Protocol.st_rejected
  | _ -> Alcotest.fail "expected Stats_r"

let test_server_health_report () =
  (* A healthy daemon answers the Health op with an empty reason list —
     from the loop itself, before admission, so it costs no batch. *)
  let addr, pid = fork_server ~max_requests:1 () in
  let c = connect_or_fail addr in
  let body =
    call_or_fail c
      (req ~id:0 ~op:Protocol.Health ~graph:"-" ~model:"-" ~engine:"-" ~t:0 ())
  in
  Client.close c;
  ignore (Unix.waitpid [] pid);
  match body with
  | Protocol.Health_r { reasons = [] } -> ()
  | Protocol.Health_r { reasons } ->
      Alcotest.failf "fresh daemon reported %d degraded subsystem(s)"
        (List.length reasons)
  | _ -> Alcotest.fail "expected Health_r"

let test_server_overload () =
  (* A pipelining client must outrun a queue bound of 1 and observe
     Overloaded verdicts; every request is still answered exactly once. *)
  let n = 8 in
  let addr, pid =
    fork_server ~queue_bound:1 ~batch_max:1 ~max_requests:n ()
  in
  let c = connect_or_fail addr in
  let reqs = List.init n (fun i -> req ~id:i ~seed:5L ~trials:2 ()) in
  List.iter (fun r -> Client.send c r) reqs;
  let seen = Array.make n 0 in
  let overloaded = ref 0 in
  for _ = 1 to n do
    match Client.recv c with
    | Error msg -> Alcotest.fail ("recv: " ^ msg)
    | Ok resp ->
        let idx = resp.Protocol.rid in
        checkb "rid in range" true (idx >= 0 && idx < n);
        seen.(idx) <- seen.(idx) + 1;
        (match resp.Protocol.body with
        | Protocol.Error_r { code = Protocol.Overloaded; _ } -> incr overloaded
        | Protocol.Sample_r _ -> ()
        | _ -> Alcotest.fail "unexpected body under overload")
  done;
  Client.close c;
  ignore (Unix.waitpid [] pid);
  Array.iteri (fun i k -> checki (Printf.sprintf "id %d answered once" i) 1 k) seen;
  checkb "the tiny queue rejected at least one request" true (!overloaded >= 1);
  checkb "at least one request was admitted" true (!overloaded < n)

let test_server_malformed_input () =
  (* Broken framing gives the server no request boundary to resynchronize
     on: it drops the connection without answering.  A well-framed but
     malformed payload is answered Bad_request on the frame's id. *)
  let addr, pid = fork_server ~max_requests:1 () in
  let path = match addr with Server.Unix_path p -> p | _ -> assert false in
  let raw () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec retry k =
      try Unix.connect fd (Unix.ADDR_UNIX path)
      with Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when k > 0 ->
        Ls_shard.Supervisor.sleep_ms 50;
        retry (k - 1)
    in
    retry 50;
    fd
  in
  (* Connection 1: garbage bytes — expect a silent close.  At least a
     full frame header's worth, so the blocking header read completes
     and the magic check fires. *)
  let fd1 = raw () in
  let junk = Bytes.make 256 'x' in
  ignore (Unix.write fd1 junk 0 (Bytes.length junk));
  let buf = Bytes.create 64 in
  let rec read_eof () =
    match Unix.read fd1 buf 0 64 with
    | 0 -> true
    | _ -> read_eof ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_eof ()
  in
  checkb "broken framing drops the connection" true (read_eof ());
  Unix.close fd1;
  (* Connection 2: a valid frame holding a garbage payload — expect a
     named Bad_request response carrying the frame-header id. *)
  let fd2 = raw () in
  Frame.write_fd fd2
    { Frame.kind = Protocol.kind_request; a = 7; b = 0; c = 0; payload = "junk" };
  (match Protocol.read_response fd2 with
  | Ok { Protocol.rid; body = Protocol.Error_r { code = Protocol.Bad_request; message } } ->
      checki "the reply carries the frame id" 7 rid;
      checkb "the reason is named" true (String.length message > 0)
  | Ok _ -> Alcotest.fail "expected a Bad_request reply"
  | Error _ -> Alcotest.fail "expected a reply, got a read error");
  Unix.close fd2;
  ignore (Unix.waitpid [] pid)

let test_server_stalled_partial_frame () =
  (* A peer that sends half a frame and stalls must not block the loop:
     a second connection's request is still answered (regression: the
     drain path blocked in a full-frame read until the stalled peer
     finished).  Once the stalled peer completes its frame, it is
     answered normally too. *)
  let addr, pid = fork_server ~max_requests:2 () in
  let path = match addr with Server.Unix_path p -> p | _ -> assert false in
  let c = connect_or_fail addr in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  let enc = Protocol.encode_request (req ~id:1 ~seed:9L ()) in
  let cut = 10 in
  ignore (Unix.write_substring fd enc 0 cut);
  (* Give the loop a select round to pull the partial bytes first: the
     stalled connection is drained before the healthy one. *)
  Ls_shard.Supervisor.sleep_ms 100;
  (match call_or_fail c (req ~id:0 ~seed:5L ()) with
  | Protocol.Sample_r _ -> ()
  | _ -> Alcotest.fail "expected a Sample_r past the stalled peer");
  ignore (Unix.write_substring fd enc cut (String.length enc - cut));
  (match Protocol.read_response fd with
  | Ok { Protocol.rid = 1; body = Protocol.Sample_r _ } -> ()
  | _ -> Alcotest.fail "completed frame must be answered");
  Unix.close fd;
  Client.close c;
  ignore (Unix.waitpid [] pid)

(* --- client failure naming -------------------------------------------- *)

let test_client_unknown_host () =
  (* gethostbyname signals an unknown host with Not_found, which used to
     escape connect as a bare exception; it must surface as Unknown_host
     from connect and as a named Error from connect_retry. *)
  let addr = Server.Tcp ("definitely-not-a-real-host.invalid", 4242) in
  (match Client.connect addr with
  | exception Client.Unknown_host host ->
      checkb "the exception names the host" true
        (contains host "definitely-not-a-real-host.invalid")
  | exception e ->
      Alcotest.fail ("expected Unknown_host, got " ^ Printexc.to_string e)
  | c ->
      Client.close c;
      Alcotest.fail "a .invalid hostname must not resolve");
  match Client.connect_retry ~attempts:1 addr with
  | Ok c ->
      Client.close c;
      Alcotest.fail "connect_retry must fail on an unknown host"
  | Error msg ->
      checkb "the error names the host" true (contains msg "unknown host");
      checkb "the error counts attempts" true (contains msg "1 attempt(s)")

let test_client_backoff_attempts () =
  (* A connect that never succeeds burns the whole budget and says so:
     ENOENT retries until the last attempt, which reports the count. *)
  let missing = sock_path () in
  match
    Client.connect_retry ~attempts:3 ~delay_ms:1 (Server.Unix_path missing)
  with
  | Ok c ->
      Client.close c;
      Alcotest.fail "connecting to a missing socket must fail"
  | Error msg ->
      checkb "the error counts every attempt" true (contains msg "3 attempt(s)");
      checkb "the error names the address" true (contains msg missing)

(* --- warm-start snapshots ---------------------------------------------- *)

let test_engine_snapshot_roundtrip () =
  let e = Engine.create ~instance_cache:8 () in
  let r1 = req ~id:0 ~seed:11L ~trials:3 () in
  let r2 =
    req ~id:1 ~op:Protocol.Count ~graph:"grid:3x4" ~model:"ising:0.3" ~t:2 ()
  in
  let body1 =
    match Engine.submit e ~domains:1 r1 with
    | Ok b -> b
    | Error _ -> Alcotest.fail "submit r1"
  in
  (match Engine.submit e ~domains:1 r2 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "submit r2");
  let snap = Engine.snapshot e in
  let e2 = Engine.create ~instance_cache:8 () in
  (match Engine.restore e2 snap with
  | Ok n -> checkb "restore rebuilds at least one entry" true (n >= 1)
  | Error msg -> Alcotest.fail ("restore: " ^ msg));
  let body1' =
    match Engine.submit e2 ~domains:1 r1 with
    | Ok b -> b
    | Error _ -> Alcotest.fail "submit r1 on the restored engine"
  in
  checkb "restored caches serve identical bytes" true
    (Protocol.encode_response { Protocol.rid = 0; body = body1 }
    = Protocol.encode_response { Protocol.rid = 0; body = body1' });
  let st = Engine.stats e2 in
  checkb "hits on restored keys count as snapshot hits" true
    (st.Protocol.st_snapshot_hits >= 1);
  checkb "and as ordinary cache hits" true (st.Protocol.st_cache_hits >= 1);
  match Engine.restore (Engine.create ()) "garbage payload" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "a garbage payload must be a named error"

let test_snapshot_corrupt_reads_as_absence () =
  (* The on-disk contract: a torn or corrupted snapshot file is
     indistinguishable from no snapshot — the daemon cold-starts, it
     never crashes or loads damaged caches. *)
  let module Ckpt = Ls_shard.Ckpt in
  let path = Filename.temp_file "ls-serve-snap" ".snap" in
  let meta = { Ckpt.run_id = 77L; shard = 0; phase = 1; round = 3 } in
  Ckpt.save_path ~path meta "the cache payload";
  let slurp () =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let rewrite s =
    let oc = open_out_bin path in
    output_string oc s;
    close_out oc
  in
  let whole = slurp () in
  (match Ckpt.load_path ~path with
  | Some (m, payload) ->
      checkb "an intact snapshot loads" true
        (m = meta && payload = "the cache payload")
  | None -> Alcotest.fail "an intact snapshot must load");
  rewrite (String.sub whole 0 (String.length whole / 2));
  checkb "a torn snapshot reads as absence" true (Ckpt.load_path ~path = None);
  let b = Bytes.of_string whole in
  let last = Bytes.length b - 1 in
  Bytes.set b last (Char.chr (Char.code (Bytes.get b last) lxor 0x01));
  rewrite (Bytes.to_string b);
  checkb "a corrupt snapshot reads as absence" true
    (Ckpt.load_path ~path = None);
  rewrite "not a snapshot at all";
  checkb "garbage reads as absence" true (Ckpt.load_path ~path = None);
  Sys.remove path

(* --- admission: deadlines and fairness --------------------------------- *)

let test_server_deadline_expired () =
  (* Two heavy requests ahead in the queue hold the deadline request well
     past its 1 ms budget (batch_max 1 serializes them); it must be
     answered Expired without executing. *)
  let addr, pid =
    fork_server ~queue_bound:16 ~batch_max:1 ~max_requests:3 ()
  in
  let c = connect_or_fail addr in
  Client.send c (req ~id:0 ~seed:3L ~trials:10_000 ());
  Client.send c (req ~id:1 ~seed:4L ~trials:10_000 ());
  Client.send c (req ~id:2 ~seed:5L ~deadline_ms:1 ());
  (match Client.recv c with
  | Ok { Protocol.rid = 0; body = Protocol.Sample_r _ } -> ()
  | _ -> Alcotest.fail "the first heavy request must be answered");
  (match Client.recv c with
  | Ok { Protocol.rid = 1; body = Protocol.Sample_r _ } -> ()
  | _ -> Alcotest.fail "the second heavy request must be answered");
  (match Client.recv c with
  | Ok { Protocol.rid = 2; body = Protocol.Error_r { code = Protocol.Expired; message } }
    ->
      checkb "the verdict carries a reason" true (String.length message > 0)
  | Ok { Protocol.rid = 2; body = Protocol.Sample_r _ } ->
      Alcotest.fail "a 1 ms deadline behind two heavy batches must expire"
  | _ -> Alcotest.fail "expected the deadline verdict");
  Client.close c;
  ignore (Unix.waitpid [] pid)

let test_server_fairness () =
  (* Admission is per connection: a flooding client fills its own queue
     and eats the Overloaded verdicts; a quiet client walking in behind
     the flood is still served. *)
  let n = 12 in
  let addr, pid =
    fork_server ~queue_bound:2 ~batch_max:1 ~max_requests:(n + 1) ()
  in
  let a = connect_or_fail addr in
  let b = connect_or_fail addr in
  List.iter
    (fun r -> Client.send a r)
    (List.init n (fun i -> req ~id:i ~seed:5L ~trials:2 ()));
  (* Let the daemon pull the flood so A's admission verdicts are fixed
     before B's request arrives. *)
  Ls_shard.Supervisor.sleep_ms 100;
  (match call_or_fail b (req ~id:99 ~seed:6L ()) with
  | Protocol.Sample_r _ -> ()
  | Protocol.Error_r { code = Protocol.Overloaded; _ } ->
      Alcotest.fail "the quiet client must not pay for the flooder's queue"
  | _ -> Alcotest.fail "unexpected body for the quiet client");
  let overloaded = ref 0 in
  for _ = 1 to n do
    match Client.recv a with
    | Error msg -> Alcotest.fail ("recv: " ^ msg)
    | Ok resp -> (
        match resp.Protocol.body with
        | Protocol.Error_r { code = Protocol.Overloaded; _ } -> incr overloaded
        | Protocol.Sample_r _ -> ()
        | _ -> Alcotest.fail "unexpected body under flood")
  done;
  Client.close a;
  Client.close b;
  ignore (Unix.waitpid [] pid);
  checkb "the flooder saw Overloaded" true (!overloaded >= 1);
  checkb "the flooder still got answers" true (!overloaded < n)

(* --- crash tolerance --------------------------------------------------- *)

let test_server_drain_under_load () =
  (* SIGTERM mid-burst: the daemon stops accepting, answers every admitted
     request, and exits 0 — the client sees all n answers, then EOF. *)
  let path = sock_path () in
  (try Unix.unlink path with _ -> ());
  flush stdout;
  flush stderr;
  let pid =
    match Unix.fork () with
    | 0 ->
        let cfg =
          Server.config ~address:(Server.Unix_path path) ~queue_bound:32
            ~batch_max:2 ()
        in
        ignore (Server.run ~cfg ());
        Unix._exit 0
    | pid -> pid
  in
  let c = connect_or_fail (Server.Unix_path path) in
  let n = 10 in
  List.iter
    (fun r -> Client.send c r)
    (List.init n (fun i -> req ~id:i ~seed:21L ~trials:5_000 ()));
  (* One select round to admit the burst, then interrupt mid-execution. *)
  Ls_shard.Supervisor.sleep_ms 60;
  Unix.kill pid Sys.sigterm;
  let seen = Array.make n 0 in
  for _ = 1 to n do
    match Client.recv c with
    | Error msg -> Alcotest.fail ("the drain must answer first: " ^ msg)
    | Ok resp ->
        checkb "rid in range" true (resp.Protocol.rid >= 0 && resp.Protocol.rid < n);
        seen.(resp.Protocol.rid) <- seen.(resp.Protocol.rid) + 1;
        (match resp.Protocol.body with
        | Protocol.Sample_r _ -> ()
        | _ -> Alcotest.fail "unexpected body during drain")
  done;
  (match Client.recv c with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "after the drain: EOF, not extra responses");
  Client.close c;
  let _, status = Unix.waitpid [] pid in
  Array.iteri
    (fun i k -> checki (Printf.sprintf "id %d answered once" i) 1 k)
    seen;
  checkb "the daemon exits 0 after the drain" true (status = Unix.WEXITED 0)

let test_server_supervised_restart () =
  (* kill -9 on the worker mid-session: the supervisor respawns it under
     the parent-held listener, the replacement warm-starts from the cache
     snapshot, and the same request bytes draw the same response bytes. *)
  let prev = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  Fun.protect ~finally:(fun () -> Sys.set_signal Sys.sigpipe prev) @@ fun () ->
  let path = sock_path () in
  (try Unix.unlink path with _ -> ());
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "ls-serve-state-%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let pid_file = Filename.concat dir "worker.pid" in
  flush stdout;
  flush stderr;
  let sup =
    match Unix.fork () with
    | 0 ->
        (try
           let cfg =
             Server.config ~address:(Server.Unix_path path) ~queue_bound:16
               ~batch_max:4 ~state_dir:dir ~snapshot_every:1 ()
           in
           ignore (Server.run_supervised ~cfg ~worker_pid_file:pid_file ())
         with _ -> Unix._exit 1);
        Unix._exit 0
    | pid -> pid
  in
  let read_pid () =
    match open_in pid_file with
    | exception Sys_error _ -> None
    | ic ->
        let line = try input_line ic with End_of_file -> "" in
        close_in ic;
        int_of_string_opt (String.trim line)
  in
  let rec wait_pid_file k =
    match read_pid () with
    | Some p -> p
    | None when k > 0 ->
        Ls_shard.Supervisor.sleep_ms 20;
        wait_pid_file (k - 1)
    | None -> Alcotest.fail "the worker pid file never appeared"
  in
  let r1 = req ~id:0 ~seed:3L ~trials:3 () in
  let c1 = connect_or_fail (Server.Unix_path path) in
  let body1 = call_or_fail c1 r1 in
  (* Give the worker a beat to finish the post-batch snapshot before the
     kill lands (snapshot_every=1: the first batch writes it). *)
  Ls_shard.Supervisor.sleep_ms 150;
  let worker = wait_pid_file 250 in
  Unix.kill worker Sys.sigkill;
  Client.close c1;
  let c2 = connect_or_fail (Server.Unix_path path) in
  let body2 = call_or_fail c2 r1 in
  checkb "same request bytes, same response bytes across the restart" true
    (Protocol.encode_response { Protocol.rid = 0; body = body1 }
    = Protocol.encode_response { Protocol.rid = 0; body = body2 });
  (match
     call_or_fail c2
       (req ~id:9 ~op:Protocol.Stats ~graph:"-" ~model:"-" ~engine:"-" ~t:0 ())
   with
  | Protocol.Stats_r st ->
      checkb "the restart is counted" true (st.Protocol.st_restarts >= 1);
      checkb "the replacement warm-started from the snapshot" true
        (st.Protocol.st_snapshot_hits >= 1)
  | _ -> Alcotest.fail "expected Stats_r");
  Client.close c2;
  Unix.kill sup Sys.sigterm;
  let _, status = Unix.waitpid [] sup in
  checkb "the supervisor exits 0 on SIGTERM" true (status = Unix.WEXITED 0)

(* --- validated environment (the exit-2 contract) ----------------------- *)

let with_env pairs f =
  let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun (k, old) -> Unix.putenv k (Option.value old ~default:""))
        saved)
    f

let test_env_checks_unit () =
  let expect_error what check var =
    match check () with
    | Ok () -> Alcotest.fail (what ^ ": expected a validation error")
    | Error msg -> checkb (what ^ " names the variable") true (contains msg var)
  in
  with_env [ ("LOCSAMPLE_DOMAINS", "abc") ] (fun () ->
      expect_error "malformed domain count" Par.env_check "LOCSAMPLE_DOMAINS");
  with_env [ ("LOCSAMPLE_DOMAINS", "0") ] (fun () ->
      expect_error "zero domains" Par.env_check "LOCSAMPLE_DOMAINS");
  with_env [ ("LOCSAMPLE_DOMAINS", "4") ] (fun () ->
      checkb "valid domains pass" true (Par.env_check () = Ok ()));
  with_env [ ("LOCSAMPLE_SERVE_QUEUE", "-3") ] (fun () ->
      expect_error "negative queue bound" Server.env_check "LOCSAMPLE_SERVE_QUEUE");
  with_env [ ("LOCSAMPLE_SERVE_CACHE", "zero") ] (fun () ->
      expect_error "malformed cache size" Server.env_check "LOCSAMPLE_SERVE_CACHE");
  (* The library accessors reject exactly what env_check rejects — no
     silent fallback to the default (regression). *)
  with_env [ ("LOCSAMPLE_SERVE_QUEUE", "lots") ] (fun () ->
      match Server.default_queue () with
      | exception Invalid_argument msg ->
          checkb "library accessor names the variable" true
            (contains msg "LOCSAMPLE_SERVE_QUEUE")
      | _ -> Alcotest.fail "malformed LOCSAMPLE_SERVE_QUEUE must raise");
  with_env [ ("LOCSAMPLE_SERVE_CACHE", "-1") ] (fun () ->
      match Server.default_cache () with
      | exception Invalid_argument msg ->
          checkb "non-positive cache size raises" true
            (contains msg "LOCSAMPLE_SERVE_CACHE")
      | _ -> Alcotest.fail "non-positive LOCSAMPLE_SERVE_CACHE must raise");
  with_env [ ("LOCSAMPLE_SERVE_SOCKET", "tcp:notaport:xyz") ] (fun () ->
      expect_error "malformed serve socket" Server.env_check "LOCSAMPLE_SERVE_SOCKET");
  with_env [ ("LOCSAMPLE_SERVE_SEND_TIMEOUT", "abc") ] (fun () ->
      expect_error "malformed send timeout" Server.env_check
        "LOCSAMPLE_SERVE_SEND_TIMEOUT");
  with_env [ ("LOCSAMPLE_SERVE_SEND_TIMEOUT", "0") ] (fun () ->
      expect_error "zero send timeout" Server.env_check
        "LOCSAMPLE_SERVE_SEND_TIMEOUT");
  with_env [ ("LOCSAMPLE_SERVE_SEND_TIMEOUT", "2.5") ] (fun () ->
      checkb "valid send timeout passes" true (Server.env_check () = Ok ()));
  with_env [ ("LOCSAMPLE_SERVE_SEND_TIMEOUT", "nope") ] (fun () ->
      match Server.default_send_timeout () with
      | exception Invalid_argument msg ->
          checkb "send-timeout accessor names the variable" true
            (contains msg "LOCSAMPLE_SERVE_SEND_TIMEOUT")
      | _ -> Alcotest.fail "malformed LOCSAMPLE_SERVE_SEND_TIMEOUT must raise");
  let state_file = Filename.temp_file "ls-serve-state-notadir" ".txt" in
  with_env [ ("LOCSAMPLE_SERVE_STATE", state_file) ] (fun () ->
      expect_error "state dir is a file" Server.env_check
        "LOCSAMPLE_SERVE_STATE");
  Sys.remove state_file;
  with_env
    [ ("LOCSAMPLE_SERVE_SOCKET", "unix:/tmp/x.sock");
      ("LOCSAMPLE_SERVE_QUEUE", "8"); ("LOCSAMPLE_SERVE_CACHE", "16") ]
    (fun () -> checkb "valid serve env passes" true (Server.env_check () = Ok ()));
  let file = Filename.temp_file "ls-serve-notadir" ".txt" in
  with_env [ ("LOCSAMPLE_SHARD_DIR", file) ] (fun () ->
      expect_error "shard dir is a file" Ls_shard.Ckpt.env_check
        "LOCSAMPLE_SHARD_DIR");
  Sys.remove file

(* Exec the real binary: a malformed LOCSAMPLE_* variable must exit 2
   with a named message — never escape as an uncaught backtrace (the
   regression this PR fixes). *)
let locsample_exe =
  (* The test binary lives in _build/default/test/; the CLI is a declared
     dep at _build/default/bin/.  Resolve relative to the test executable
     so the path holds under both `dune runtest` and `dune exec`. *)
  Filename.concat
    (Filename.dirname (Filename.dirname Sys.executable_name))
    (Filename.concat "bin" "locsample.exe")

let run_cli ~extra_env args =
  let keep s = not (contains s "LOCSAMPLE_") in
  let env =
    Array.of_list
      (List.filter keep (Array.to_list (Unix.environment ())) @ extra_env)
  in
  let out_file = Filename.temp_file "ls-serve-cli" ".out" in
  let err_file = Filename.temp_file "ls-serve-cli" ".err" in
  let fd_out = Unix.openfile out_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let fd_err = Unix.openfile err_file [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
  let pid =
    Unix.create_process_env locsample_exe
      (Array.of_list (locsample_exe :: args))
      env Unix.stdin fd_out fd_err
  in
  Unix.close fd_out;
  Unix.close fd_err;
  let _, status = Unix.waitpid [] pid in
  let slurp path =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  let out = slurp out_file in
  let err = slurp err_file in
  let code = match status with Unix.WEXITED c -> c | _ -> -1 in
  (code, out, err)

let test_cli_env_exit2 () =
  let cheap = [ "phase"; "--depth"; "1" ] in
  let expect_named_exit2 what extra_env var =
    let code, _out, err = run_cli ~extra_env cheap in
    checki (what ^ " exits 2") 2 code;
    checkb (what ^ " names the variable") true (contains err var);
    checkb (what ^ " is not a backtrace") true (not (contains err "Raised at"));
    checkb (what ^ " uses the CLI prefix") true (contains err "locsample:")
  in
  expect_named_exit2 "malformed LOCSAMPLE_DOMAINS"
    [ "LOCSAMPLE_DOMAINS=abc" ] "LOCSAMPLE_DOMAINS";
  expect_named_exit2 "zero LOCSAMPLE_DOMAINS"
    [ "LOCSAMPLE_DOMAINS=0" ] "LOCSAMPLE_DOMAINS";
  expect_named_exit2 "malformed LOCSAMPLE_SERVE_QUEUE"
    [ "LOCSAMPLE_SERVE_QUEUE=lots" ] "LOCSAMPLE_SERVE_QUEUE";
  let file = Filename.temp_file "ls-serve-notadir" ".txt" in
  expect_named_exit2 "LOCSAMPLE_SHARD_DIR pointing at a file"
    [ "LOCSAMPLE_SHARD_DIR=" ^ file ] "LOCSAMPLE_SHARD_DIR";
  Sys.remove file;
  expect_named_exit2 "zero LOCSAMPLE_SERVE_SEND_TIMEOUT"
    [ "LOCSAMPLE_SERVE_SEND_TIMEOUT=0" ] "LOCSAMPLE_SERVE_SEND_TIMEOUT";
  let state_file = Filename.temp_file "ls-serve-state-notadir" ".txt" in
  expect_named_exit2 "LOCSAMPLE_SERVE_STATE pointing at a file"
    [ "LOCSAMPLE_SERVE_STATE=" ^ state_file ] "LOCSAMPLE_SERVE_STATE";
  Sys.remove state_file;
  (* And a well-formed environment still runs. *)
  let code, out, _err = run_cli ~extra_env:[ "LOCSAMPLE_DOMAINS=2" ] cheap in
  checki "valid env exits 0" 0 code;
  checkb "valid env produces output" true (String.length out > 0)

let suite =
  [
    Alcotest.test_case "protocol round-trip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "protocol named errors" `Quick test_protocol_named_errors;
    Alcotest.test_case "protocol decode fuzz (mutated bytes)" `Quick
      test_protocol_decode_fuzz;
    Alcotest.test_case "lru eviction order and counters" `Quick test_lru;
    Alcotest.test_case "engine cache keys" `Quick test_engine_cache_keys;
    Alcotest.test_case "engine named rejections" `Quick
      test_engine_named_rejections;
    Alcotest.test_case "engine parity with direct library calls" `Quick
      test_engine_parity_with_library;
    Alcotest.test_case "engine batch determinism + coalescing" `Quick
      test_engine_batch_determinism;
    Alcotest.test_case "engine duplicate client ids in one batch" `Quick
      test_engine_duplicate_ids;
    Alcotest.test_case "engine eviction pressure" `Quick
      test_engine_eviction_pressure;
    Alcotest.test_case "server end to end (unix socket)" `Quick
      test_server_end_to_end;
    Alcotest.test_case "server health report" `Quick test_server_health_report;
    Alcotest.test_case "server overload verdicts" `Quick test_server_overload;
    Alcotest.test_case "server malformed input" `Quick
      test_server_malformed_input;
    Alcotest.test_case "server stalled partial frame" `Quick
      test_server_stalled_partial_frame;
    Alcotest.test_case "client: unknown host is a named error" `Quick
      test_client_unknown_host;
    Alcotest.test_case "client: connect backoff counts attempts" `Quick
      test_client_backoff_attempts;
    Alcotest.test_case "engine snapshot round-trip (warm start)" `Quick
      test_engine_snapshot_roundtrip;
    Alcotest.test_case "snapshot torn/corrupt reads as absence" `Quick
      test_snapshot_corrupt_reads_as_absence;
    Alcotest.test_case "server deadline expiry" `Quick
      test_server_deadline_expired;
    Alcotest.test_case "server per-connection fairness" `Quick
      test_server_fairness;
    Alcotest.test_case "server drain under load (SIGTERM)" `Quick
      test_server_drain_under_load;
    Alcotest.test_case "server supervised kill -9 restart" `Quick
      test_server_supervised_restart;
    Alcotest.test_case "env validation (unit)" `Quick test_env_checks_unit;
    Alcotest.test_case "cli: malformed env exits 2, no backtrace" `Quick
      test_cli_env_exit2;
  ]
