(* The serve chaos harness (lib/chaos/proxy + serve_chaos): determinism
   of the per-frame fault draw, transparency of the quiet proxy against
   a live daemon, a small end-to-end chaos run, the planted-failure
   shrink (the harness must localize a failure to its guilty fault
   dimension), and the reproducer round-trip.

   NOTE: the harness forks daemon and proxy processes, so this suite
   shares the shard/serve suites' before-any-domain constraint — it is
   registered right after the serve suite in test_main. *)

module Proxy = Ls_chaos.Proxy
module Serve_chaos = Ls_chaos.Serve_chaos
module Protocol = Ls_serve.Protocol

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_decide_deterministic () =
  (* The fault draw is a pure function of (seed, conn, dir, frame): two
     sweeps agree point by point, and the seed actually matters. *)
  let spec =
    {
      (Proxy.quiet 42L) with
      Proxy.corrupt = 0.2;
      truncate = 0.1;
      reset = 0.1;
      duplicate = 0.2;
      delay = 0.2;
      delay_ms = 3;
    }
  in
  let sweep s =
    List.concat_map
      (fun conn ->
        List.concat_map
          (fun dir ->
            List.map
              (fun frame -> Proxy.decide s ~conn ~dir ~frame ~len:64)
              [ 0; 1; 2; 3; 4; 5; 6; 7 ])
          [ 0; 1 ])
      [ 0; 1; 2; 3 ]
  in
  checkb "the same seed replays the same schedule" true
    (sweep spec = sweep spec);
  let other = sweep { spec with Proxy.seed = 43L } in
  checkb "a different seed draws a different schedule" true
    (other <> sweep spec);
  (* The quiet spec never injects anything. *)
  checkb "the quiet spec always passes" true
    (List.for_all (fun a -> a = Proxy.Pass) (sweep (Proxy.quiet 42L)))

let test_gen_requests_deterministic () =
  let a = Serve_chaos.gen_requests ~seed:9L ~n:16 in
  let b = Serve_chaos.gen_requests ~seed:9L ~n:16 in
  checkb "the workload is a pure function of the seed" true (a = b);
  checki "the burst has the requested size" 16 (Array.length a);
  Array.iteri
    (fun i r ->
      checki "ids are the burst index" i r.Protocol.id;
      checki "no deadlines in the chaos burst" 0 r.Protocol.deadline_ms)
    a

let test_reproducer_roundtrip () =
  let sch =
    {
      (Serve_chaos.quiet_schedule 7L) with
      Serve_chaos.net = { (Proxy.quiet 7L) with Proxy.duplicate = 0.1 };
    }
  in
  let summary =
    {
      Serve_chaos.seed = -13L;
      schedules = 4;
      requests = 17;
      sysfault = false;
      zero_fault = None;
      failures =
        [
          {
            Serve_chaos.index = 2;
            f_spec = sch;
            f_violations =
              [ { Serve_chaos.invariant = "rid-integrity"; detail = "x" } ];
            f_shrunk = sch;
            f_shrunk_violations =
              [ { Serve_chaos.invariant = "rid-integrity"; detail = "x" } ];
          };
        ];
    }
  in
  checkb "a summary with failures is not ok" true
    (not (Serve_chaos.ok summary));
  let report = Serve_chaos.reproducer summary in
  checkb "the report names the invariant" true
    (contains report "rid-integrity");
  (match Serve_chaos.parse_reproducer report with
  | Some (seed, schedules, requests, sysfault) ->
      checkb "the replay line round-trips the seed" true (seed = -13L);
      checki "the replay line round-trips the schedule count" 4 schedules;
      checki "the replay line round-trips the request count" 17 requests;
      checkb "the replay line round-trips the sysfault flag" true
        (sysfault = false)
  | None -> Alcotest.fail "the reproducer must parse back");
  checkb "junk does not parse" true
    (Serve_chaos.parse_reproducer "no replay line here" = None)

let test_quiet_transparency () =
  (* The all-zero schedule through the proxy must be invisible: same
     bytes as the proxy-free baseline, no violations. *)
  let requests = Serve_chaos.gen_requests ~seed:3L ~n:6 in
  let baseline = Serve_chaos.baseline_run requests in
  checki "one baseline response per request" 6 (Array.length baseline);
  match
    Serve_chaos.run_spec ~requests ~baseline (Serve_chaos.quiet_schedule 3L)
  with
  | [] -> ()
  | v :: _ ->
      Alcotest.fail
        (Printf.sprintf "quiet proxy violated %s: %s"
           v.Serve_chaos.invariant v.Serve_chaos.detail)

let test_planted_failure_shrinks () =
  (* Plant a failure that fires exactly when the duplicate dimension is
     live: the shrinker must zero every innocent dimension and keep the
     guilty one. *)
  let requests = Serve_chaos.gen_requests ~seed:5L ~n:4 in
  let baseline = Serve_chaos.baseline_run requests in
  let check sch =
    if sch.Serve_chaos.net.Proxy.duplicate > 0. then
      Some
        { Serve_chaos.invariant = "planted"; detail = "duplicate dimension live" }
    else None
  in
  let sch =
    {
      Serve_chaos.net =
        {
          (Proxy.quiet 11L) with
          Proxy.duplicate = 0.05;
          corrupt = 0.05;
          delay = 0.1;
          delay_ms = 2;
        };
      sys =
        { (Ls_chaos.Sysfault.quiet 11L) with Ls_chaos.Sysfault.eintr = 0.2 };
    }
  in
  let violations = Serve_chaos.run_spec ~check ~requests ~baseline sch in
  checkb "the planted invariant fires" true
    (List.exists (fun v -> v.Serve_chaos.invariant = "planted") violations);
  let shrunk = Serve_chaos.shrink ~check ~requests ~baseline sch in
  checkb "shrink keeps the guilty dimension" true
    (shrunk.Serve_chaos.net.Proxy.duplicate > 0.);
  checkb "shrink zeroes the innocent dimensions" true
    (shrunk.Serve_chaos.net.Proxy.corrupt = 0.
    && shrunk.Serve_chaos.net.Proxy.delay = 0.
    && shrunk.Serve_chaos.net.Proxy.truncate = 0.
    && shrunk.Serve_chaos.net.Proxy.reset = 0.);
  checkb "shrink zeroes the innocent syscall dimension" true
    (Ls_chaos.Sysfault.is_quiet shrunk.Serve_chaos.sys)

let test_chaos_run_small () =
  (* A short full run: baseline, transparency, two generated schedules —
     every serve invariant must hold on the unmodified daemon. *)
  let summary = Serve_chaos.run ~schedules:2 ~requests:8 ~seed:2026L () in
  if not (Serve_chaos.ok summary) then
    Alcotest.fail (Serve_chaos.reproducer summary)

let suite =
  [
    Alcotest.test_case "proxy fault draw is deterministic" `Quick
      test_decide_deterministic;
    Alcotest.test_case "chaos workload is deterministic" `Quick
      test_gen_requests_deterministic;
    Alcotest.test_case "reproducer round-trips" `Quick
      test_reproducer_roundtrip;
    Alcotest.test_case "quiet proxy is transparent" `Quick
      test_quiet_transparency;
    Alcotest.test_case "planted failure shrinks to its dimension" `Quick
      test_planted_failure_shrinks;
    Alcotest.test_case "serve invariants hold under chaos" `Quick
      test_chaos_run_small;
  ]
