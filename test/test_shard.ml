(* The sharded multi-process execution layer (lib/shard).

   Four axes: the wire/checkpoint codecs (round trips, named errors,
   fuzz over mutated bytes, byte-at-a-time streaming), the shard
   geometry, the supervisor's kill -9 lifecycle (restart before the
   first checkpoint, double kills inside one budget, budget exhaustion,
   fleet-wide death, hang probes), and the bit-identity contract — a
   sharded run, killed or not, must reproduce the in-process executor
   exactly.

   NOTE: these tests fork worker processes, and the OCaml runtime
   permanently refuses [Unix.fork] in a process that ever created a
   domain — so this suite must run before any suite that touches the
   domain pool (it is registered first in test_main, and every parallel
   call here pins [~domains:1], which spawns none). *)

module Rng = Ls_rng.Rng
module Generators = Ls_graph.Generators
module Models = Ls_gibbs.Models
module Faults = Ls_local.Faults
module Resilient = Ls_local.Resilient
module Trace = Ls_obs.Trace
module Metrics = Ls_obs.Metrics
module Par = Ls_par.Par
module Frame = Ls_shard.Frame
module Ckpt = Ls_shard.Ckpt
module Router = Ls_shard.Router
module Supervisor = Ls_shard.Supervisor
module Exec = Ls_shard.Exec
module Sweep = Ls_shard.Sweep
open Ls_core

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ls-shard-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* --- frame codec ------------------------------------------------------- *)

let test_frame_roundtrip () =
  let cases =
    [
      { Frame.kind = 0; a = 0; b = 0; c = 0; payload = "" };
      { Frame.kind = 255; a = max_int; b = min_int; c = -1; payload = "x" };
      { Frame.kind = 7; a = 3; b = 1; c = 2; payload = String.make 10_000 '\x00' };
      { Frame.kind = 1; a = 42; b = 9; c = 0; payload = "\xff\x00binary\nstuff" };
    ]
  in
  List.iter
    (fun f ->
      match Frame.decode (Frame.encode f) with
      | Ok f' -> checkb "frame round-trips" true (f = f')
      | Error e -> Alcotest.fail ("round-trip failed: " ^ e))
    cases;
  checkb "digest is a pure function" true
    (Frame.digest64 "abc" = Frame.digest64 "abc"
    && Frame.digest64 "abc" <> Frame.digest64 "abd")

let test_frame_named_errors () =
  let f = { Frame.kind = 3; a = 1; b = 2; c = 3; payload = "payload!" } in
  let enc = Frame.encode f in
  let expect_error what s =
    match Frame.decode s with
    | Ok _ -> Alcotest.fail (what ^ ": expected a decode error")
    | Error e -> checkb (what ^ " has a named reason") true (String.length e > 0)
  in
  expect_error "bad magic" ("XXXX" ^ String.sub enc 4 (String.length enc - 4));
  (* Truncation at every boundary short of a full frame. *)
  for len = 0 to String.length enc - 1 do
    expect_error "truncation" (String.sub enc 0 len)
  done;
  expect_error "trailing bytes" (enc ^ "z");
  (* Corrupt one payload byte: the digest must catch it. *)
  let corrupt = Bytes.of_string enc in
  Bytes.set corrupt (String.length enc - 2)
    (Char.chr (Char.code (Bytes.get corrupt (String.length enc - 2)) lxor 1));
  expect_error "digest mismatch" (Bytes.to_string corrupt);
  (* An absurd length prefix must be rejected before any allocation is
     sized by it: encode a filler frame and splice a huge length in. *)
  checkb "max_payload is finite" true (Frame.max_payload < Sys.max_string_length)

let test_frame_fuzz_mutations () =
  (* Single-byte mutations and truncations of a valid frame must always
     produce Ok or a named Error — never an exception, never an
     allocation driven by an unvalidated length. *)
  let rng = Rng.create 9001L in
  let f =
    { Frame.kind = 2; a = 17; b = 5; c = 1; payload = String.make 200 'q' }
  in
  let enc = Frame.encode f in
  let n = String.length enc in
  for _ = 1 to 2_000 do
    let b = Bytes.of_string enc in
    let pos = Rng.int rng n in
    Bytes.set b pos (Char.chr (Rng.int rng 256));
    (match Frame.decode (Bytes.to_string b) with Ok _ | Error _ -> ());
    let cut = Rng.int rng (n + 1) in
    match Frame.decode (String.sub (Bytes.to_string b) 0 cut) with
    | Ok _ | Error _ -> ()
  done

let test_frame_decode_prefix () =
  let f1 = { Frame.kind = 1; a = 7; b = 0; c = 0; payload = "alpha" } in
  let f2 = { Frame.kind = 2; a = 8; b = 1; c = 2; payload = String.make 90 'w' } in
  let enc1 = Frame.encode f1 and enc2 = Frame.encode f2 in
  (* Every proper prefix asks for more bytes; the full encoding decodes
     with an exact consumed count. *)
  for len = 0 to String.length enc1 - 1 do
    match Frame.decode_prefix (String.sub enc1 0 len) with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.fail "partial frame must not decode"
    | Error e -> Alcotest.fail ("partial frame must not be malformed: " ^ e)
  done;
  (match Frame.decode_prefix (enc1 ^ enc2) with
  | Ok (Some (f, used)) ->
      checkb "first frame decoded" true (f = f1);
      checki "consumed exactly one frame" (String.length enc1) used;
      let rest = String.sub (enc1 ^ enc2) used (String.length enc2) in
      (match Frame.decode_prefix rest with
      | Ok (Some (f', used')) ->
          checkb "second frame decoded" true (f' = f2);
          checki "second frame consumed" (String.length enc2) used'
      | _ -> Alcotest.fail "second frame must decode from the remainder")
  | _ -> Alcotest.fail "concatenated frames must decode one at a time");
  (* A caller-imposed payload cap rejects the length claim up front,
     before the payload bytes (which may never come) are buffered. *)
  (match Frame.decode_prefix ~max_frame_payload:8 enc2 with
  | Error e -> checkb "capped length claim is named" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "length over the caller's cap must be malformed");
  (* Fuzz, same discipline as decode: mutations and truncations never
     raise. *)
  let rng = Rng.create 4242L in
  let n = String.length enc2 in
  for _ = 1 to 2_000 do
    let b = Bytes.of_string enc2 in
    Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
    (match Frame.decode_prefix (Bytes.to_string b) with
    | Ok _ | Error _ -> ());
    match
      Frame.decode_prefix (String.sub (Bytes.to_string b) 0 (Rng.int rng (n + 1)))
    with
    | Ok _ | Error _ -> ()
  done

let test_frame_streaming_byte_at_a_time () =
  (* Regression for the partial-read loops: a peer dribbling one byte at
     a time must still produce whole frames, then a clean EOF. *)
  let r, w = Unix.pipe () in
  let frames =
    [
      { Frame.kind = 1; a = 0; b = 0; c = 0; payload = "first" };
      { Frame.kind = 2; a = 1; b = 2; c = 3; payload = String.make 300 'z' };
    ]
  in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      List.iter
        (fun f ->
          let s = Frame.encode f in
          String.iter
            (fun ch ->
              let b = Bytes.make 1 ch in
              let rec put () =
                match Unix.write w b 0 1 with
                | 1 -> ()
                | _ -> put ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> put ()
              in
              put ())
            s)
        frames;
      Unix.close w;
      Unix._exit 0
  | pid ->
      Unix.close w;
      List.iter
        (fun expect ->
          match Frame.read_fd r with
          | Ok f -> checkb "streamed frame intact" true (f = expect)
          | Error _ -> Alcotest.fail "streamed frame failed to decode")
        frames;
      (match Frame.read_fd r with
      | Error Frame.Closed -> ()
      | _ -> Alcotest.fail "expected clean EOF after the last frame");
      Unix.close r;
      ignore (Unix.waitpid [] pid)

(* --- checkpoint files -------------------------------------------------- *)

let test_ckpt_roundtrip () =
  let dir = fresh_dir () in
  let meta = { Ckpt.run_id = 0x1234_5678L; shard = 1; phase = 2; round = 7 } in
  Ckpt.save ~dir meta "state bytes";
  (match Ckpt.load ~dir ~run_id:0x1234_5678L ~shard:1 with
  | Some (m, payload) ->
      checkb "meta round-trips" true (m = meta);
      checks "payload round-trips" "state bytes" payload
  | None -> Alcotest.fail "checkpoint did not load");
  checkb "wrong run id is absence" true
    (Ckpt.load ~dir ~run_id:0xdeadL ~shard:1 = None);
  checkb "wrong shard is absence" true
    (Ckpt.load ~dir ~run_id:0x1234_5678L ~shard:0 = None);
  Ckpt.remove ~dir ~run_id:0x1234_5678L ~shard:1;
  checkb "removed is absence" true
    (Ckpt.load ~dir ~run_id:0x1234_5678L ~shard:1 = None);
  rm_rf dir

let test_ckpt_torn_write_never_observed () =
  (* A writer SIGKILLed mid-write leaves either the old complete file
     (atomic rename) or a torn temp sibling — never a torn checkpoint.
     Simulate every prefix of the encoding landing at the real path: the
     reader must treat each as absence, and a valid older checkpoint
     must keep winning while the tear only exists as a temp file. *)
  let dir = fresh_dir () in
  let meta = { Ckpt.run_id = 99L; shard = 0; phase = 1; round = 4 } in
  let enc = Ckpt.encode meta "the full payload" in
  let path = Ckpt.path ~dir ~run_id:99L ~shard:0 in
  let n = String.length enc in
  let step = max 1 (n / 23) in
  let cut = ref 0 in
  while !cut < n do
    let oc = open_out_bin path in
    output_string oc (String.sub enc 0 !cut);
    close_out oc;
    checkb "torn file reads as absence" true
      (Ckpt.load ~dir ~run_id:99L ~shard:0 = None);
    cut := !cut + step
  done;
  (* Old checkpoint + torn temp sibling: load sees the old one. *)
  Ckpt.save ~dir { meta with round = 3 } "older";
  let oc = open_out_bin (path ^ ".tmp") in
  output_string oc (String.sub enc 0 (n / 2));
  close_out oc;
  (match Ckpt.load ~dir ~run_id:99L ~shard:0 with
  | Some (m, p) ->
      checki "the complete checkpoint wins" 3 m.Ckpt.round;
      checks "its payload is intact" "older" p
  | None -> Alcotest.fail "complete checkpoint hidden by a torn temp");
  Ckpt.remove ~dir ~run_id:99L ~shard:0;
  checkb "remove clears the temp sibling too" true
    (not (Sys.file_exists (path ^ ".tmp")));
  rm_rf dir

let test_ckpt_decode_fuzz () =
  let rng = Rng.create 404L in
  let meta = { Ckpt.run_id = 7L; shard = 2; phase = 0; round = 1 } in
  let enc = Ckpt.encode meta (String.make 100 'p') in
  let n = String.length enc in
  for _ = 1 to 2_000 do
    let b = Bytes.of_string enc in
    Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
    (match Ckpt.decode (Bytes.to_string b) with Ok _ | Error _ -> ());
    match Ckpt.decode (String.sub (Bytes.to_string b) 0 (Rng.int rng (n + 1))) with
    | Ok _ | Error _ -> ()
  done

(* --- shard geometry ---------------------------------------------------- *)

let test_router_partition_properties () =
  for n = 1 to 40 do
    for shards = 1 to 8 do
      let sizes = ref [] in
      let covered = ref 0 in
      for s = shards - 1 downto 0 do
        let lo, hi = Router.range ~shards ~n s in
        checkb "range is well-formed" true (0 <= lo && lo <= hi && hi <= n);
        sizes := (hi - lo) :: !sizes;
        covered := !covered + (hi - lo);
        for v = lo to hi - 1 do
          checki "owner inverts range" s (Router.owner ~shards ~n v)
        done
      done;
      checki "ranges cover every vertex" n !covered;
      (* Contiguous ascending blocks, sizes within one of each other,
         larger blocks first. *)
      let mx = List.fold_left max 0 !sizes
      and mn = List.fold_left min max_int !sizes in
      checkb "balanced within one" true (mx - mn <= 1);
      checkb "larger blocks come first" true
        (List.sort (fun a b -> compare b a) !sizes = !sizes)
    done
  done;
  let lo, hi = Router.trial_range ~shards:3 ~trials:10 0 in
  checkb "trial ranges share the geometry" true (lo = 0 && hi = 4)

let test_router_entry_codec () =
  let mk i =
    {
      Router.e_slot = i mod 3;
      e_sent = 10 + i;
      e_src = i;
      e_dst = (i * 7) mod 5;
      e_copy = i mod 2;
      e_bytes = String.make (i mod 50) (Char.chr (65 + (i mod 26)));
    }
  in
  let entries = List.init 40 mk in
  let buf = Buffer.create 64 in
  Router.encode_entries buf entries;
  let s = Buffer.contents buf in
  (match Router.decode_entries s (ref 0) with
  | Ok es -> checkb "entry list round-trips" true (es = entries)
  | Error e -> Alcotest.fail ("entry decode failed: " ^ e));
  (* Truncations and mutations: named errors or a clean decode, never an
     exception or a length-driven over-allocation. *)
  let rng = Rng.create 31337L in
  let n = String.length s in
  for _ = 1 to 1_000 do
    let b = Bytes.of_string s in
    Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
    (match Router.decode_entries (Bytes.to_string b) (ref 0) with
    | Ok _ | Error _ -> ());
    match
      Router.decode_entries (String.sub s 0 (Rng.int rng n)) (ref 0)
    with
    | Ok _ | Error _ -> ()
  done

(* --- supervisor lifecycle ---------------------------------------------- *)

(* A tiny protocol for lifecycle tests: each worker sends one done frame
   (kind 9) after optionally killing itself on chosen incarnations. *)
let lifecycle_policy =
  {
    Supervisor.restart_budget = 3;
    backoff_base_ms = 1;
    backoff_factor = 2;
    hang_timeout_ms = 150;
    hang_probes = 2;
    all_dead_grace_ms = 30;
  }

let run_lifecycle ?(policy = lifecycle_policy) ?trace ~shards ~plan () =
  (* [plan ~shard ~incarnation] decides what that incarnation does. *)
  let restarts = ref [] in
  let body ~shard ~incarnation fd =
    (match plan ~shard ~incarnation with
    | `Kill -> Unix.kill (Unix.getpid ()) Sys.sigkill
    | `Exit -> Unix._exit 1
    | `Hang ->
        while true do
          Unix.sleep 3600
        done
    | `Finish -> ());
    Frame.write_fd fd
      { Frame.kind = 9; a = incarnation; b = shard; c = 0; payload = "" }
  in
  let finished = Array.make shards (-1) in
  let on_frame ctx ~shard (f : Frame.t) =
    checki "lifecycle frame kind" 9 f.Frame.kind;
    finished.(shard) <- f.Frame.a;
    ctx.Supervisor.mark_done ~shard
  in
  Supervisor.run ~policy ?trace ~shards ~body ~on_frame
    ~on_restart:(fun ~shard ~incarnation ->
      restarts := (shard, incarnation) :: !restarts)
    ();
  (finished, List.rev !restarts)

let test_supervisor_restart_before_first_checkpoint () =
  (* kill -9 before the worker ever writes anything: the restart path
     must work with no checkpoint and no frames to go on. *)
  let trace = Trace.make () in
  let finished, restarts =
    run_lifecycle ~trace ~shards:2
      ~plan:(fun ~shard ~incarnation ->
        if shard = 0 && incarnation = 0 then `Kill else `Finish)
      ()
  in
  checki "shard 0 finished on incarnation 1" 1 finished.(0);
  checki "shard 1 untouched" 0 finished.(1);
  checkb "one restart, of shard 0" true (restarts = [ (0, 1) ]);
  let evs = Trace.events trace in
  checki "two spawns traced" 2
    (List.length
       (List.filter (function Trace.Shard_spawn _ -> true | _ -> false) evs));
  checkb "the restart is traced with no checkpoint to restore" true
    (List.exists
       (function
         | Trace.Shard_restart { shard = 0; incarnation = 1; restored_round } ->
             restored_round = -1
         | _ -> false)
       evs)

let test_supervisor_double_kill_one_budget () =
  (* Two kill -9s inside one budget of 3: still recovers. *)
  let finished, restarts =
    run_lifecycle ~shards:2
      ~plan:(fun ~shard ~incarnation ->
        if shard = 1 && incarnation < 2 then `Kill else `Finish)
      ()
  in
  checki "shard 1 finished on incarnation 2" 2 finished.(1);
  checkb "two restarts, both of shard 1" true (restarts = [ (1, 1); (1, 2) ])

let test_supervisor_budget_exhausted_transient () =
  (* One shard dying forever while its peer completes: transient (more
     retries might have helped), named by shard. *)
  match
    run_lifecycle ~shards:2
      ~plan:(fun ~shard ~incarnation:_ ->
        if shard = 0 then `Exit else `Finish)
      ()
  with
  | _ -> Alcotest.fail "expected Supervisor.Failed"
  | exception Supervisor.Failed (Supervisor.Transient, msg) ->
      checks "named by shard" "shard 0: restart budget exhausted" msg

let test_supervisor_all_dead_permanent () =
  (* The whole fleet dead inside one grace window: permanent, with every
     restart budget unspent (no restart was attempted). *)
  match
    run_lifecycle ~shards:2 ~plan:(fun ~shard:_ ~incarnation:_ -> `Exit) ()
  with
  | _ -> Alcotest.fail "expected Supervisor.Failed"
  | exception Supervisor.Failed (Supervisor.Permanent, msg) ->
      checks "fleet-wide death is permanent"
        "all 2 shards dead within one grace window" msg

let test_supervisor_hang_probe () =
  (* A worker that hangs without dying: probes fire, SIGKILL follows,
     the replacement completes. *)
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled was)
    (fun () ->
      let finished, restarts =
        run_lifecycle ~shards:2
          ~plan:(fun ~shard ~incarnation ->
            if shard = 0 && incarnation = 0 then `Hang else `Finish)
          ()
      in
      checki "hung shard finished on incarnation 1" 1 finished.(0);
      checkb "exactly one restart" true (restarts = [ (0, 1) ]);
      let m = Metrics.snapshot () in
      checkb "liveness probes were metered" true (m.Metrics.shard_probes >= 2);
      checki "restart metered" 1 m.Metrics.shard_restarts)

(* --- kill specs -------------------------------------------------------- *)

let test_parse_kill_specs () =
  (match Exec.parse_kill_specs "0:1:2,3:4:5:6,1:0:0:hang,2:0:0:1:hang" with
  | Ok [ a; b; c; d ] ->
      checkb "three-field spec" true
        (a = { Exec.k_shard = 0; k_phase = 1; k_round = 2; k_incarnation = 0;
               k_hang = false });
      checkb "four-field spec" true
        (b = { Exec.k_shard = 3; k_phase = 4; k_round = 5; k_incarnation = 6;
               k_hang = false });
      checkb "hang suffix on three fields" true
        (c.Exec.k_hang && c.Exec.k_shard = 1);
      checkb "hang suffix on four fields" true
        (d.Exec.k_hang && d.Exec.k_incarnation = 1)
  | Ok _ | Error _ -> Alcotest.fail "expected four parsed kill specs");
  checkb "empty string is no kills" true (Exec.parse_kill_specs "" = Ok []);
  (match Exec.parse_kill_specs "1:2" with
  | Error e -> checkb "short spec named" true (String.length e > 0)
  | Ok _ -> Alcotest.fail "short spec accepted");
  match Exec.parse_kill_specs "a:b:c" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-numeric spec accepted"

(* --- bit-identity of the sharded transport ----------------------------- *)

(* The chaos workload: hardcore on C6 through the supervised sampler,
   under a plan that exercises drops, duplication, delay (cross-phase
   carry), crash-recovery (checkpoint/restore), corruption and a
   partition interval. *)
let workload_instance () =
  Instance.unpinned (Models.hardcore (Generators.cycle 6) ~lambda:1.)

let flaky_faults seed =
  Faults.make ~seed ~drop:0.08 ~duplicate:0.06 ~delay:0.25 ~max_delay:2
    ~crash:0.12 ~recovery:0.8 ~recovery_delay:2 ~corrupt:0.04
    ~partitions:[ (1, 3, 2) ] ()

let run_workload ~seeds () =
  let inst = workload_instance () in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let policy = Resilient.policy ~retry_budget:3 () in
  List.map
    (fun seed ->
      let faults = flaky_faults (Int64.of_int (1000 + seed)) in
      let r =
        Local_sampler.sample_resilient oracle ~policy ~faults inst
          ~seed:(Int64.of_int seed)
      in
      (r.Local_sampler.success, r.Local_sampler.sigma, r.Local_sampler.rounds))
    seeds

let with_exec_installed cfg f =
  Exec.reset_phase_counter ();
  Exec.install cfg;
  Fun.protect ~finally:Exec.uninstall f

let test_exec_identity () =
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let unsharded = run_workload ~seeds () in
  List.iter
    (fun shards ->
      let dir = fresh_dir () in
      let got =
        with_exec_installed (Exec.config ~shards ~dir ()) (run_workload ~seeds)
      in
      checkb
        (Printf.sprintf "%d-shard run bit-identical to in-process" shards)
        true (got = unsharded);
      rm_rf dir)
    [ 1; 2; 3; 6 ]

let test_exec_kill_recovery_deterministic () =
  (* kill -9 a worker at round 0 of phase 0 — before any checkpoint of
     any phase exists — and again on a later phase: both recoveries must
     land on the undisturbed sharded (= in-process) result, twice.
     Metrics confirm the kill really fired (a restart was metered). *)
  let seeds = [ 1; 2; 3 ] in
  let unsharded = run_workload ~seeds () in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled was)
    (fun () ->
      List.iter
        (fun kills ->
          List.iter
            (fun _ ->
              Metrics.reset ();
              let dir = fresh_dir () in
              let got =
                with_exec_installed
                  (Exec.config ~shards:2 ~kills ~dir ())
                  (run_workload ~seeds)
              in
              rm_rf dir;
              checkb "the kill fired (restart metered)" true
                ((Metrics.snapshot ()).Metrics.shard_restarts >= 1);
              checkb "killed run bit-identical to in-process" true
                (got = unsharded))
            [ (); () ])
        [
          [ { Exec.k_shard = 0; k_phase = 0; k_round = 0; k_incarnation = 0;
              k_hang = false } ];
          [ { Exec.k_shard = 1; k_phase = 2; k_round = 1; k_incarnation = 0;
              k_hang = false } ];
        ])

(* --- the sharded sweep ------------------------------------------------- *)

let sweep_trial rng =
  (* A deterministic trial that also emits trace events through the
     supervised network, so the sweep's event shipping is exercised. *)
  let inst = workload_instance () in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let policy = Resilient.policy ~retry_budget:2 () in
  let faults = flaky_faults (Rng.bits64 rng) in
  let r =
    Local_sampler.sample_resilient oracle ~policy ~faults inst
      ~seed:(Rng.bits64 rng)
  in
  (r.Local_sampler.success, r.Local_sampler.sigma, r.Local_sampler.rounds)

let strip_lifecycle evs =
  List.filter
    (function Trace.Shard_spawn _ | Trace.Shard_restart _ -> false | _ -> true)
    evs

let test_sweep_identity_with_events () =
  let n = 10 and seed = 555L in
  let sink1 = Trace.make () in
  Trace.install sink1;
  let base, bt =
    Fun.protect ~finally:Trace.uninstall (fun () ->
        Par.run_trials_timed ~domains:1 ~n ~seed sweep_trial)
  in
  let dir = fresh_dir () in
  let sink2 = Trace.make () in
  Trace.install sink2;
  let got, gt =
    Fun.protect ~finally:Trace.uninstall (fun () ->
        Sweep.run_trials_timed (Exec.config ~shards:3 ~dir ()) ~n ~seed
          sweep_trial)
  in
  rm_rf dir;
  checkb "sweep results bit-identical to Par" true (got = base);
  checki "timing reports the shard count" 3 gt.Par.domains;
  checkb "per-trial timings cover every trial" true
    (Array.length gt.Par.per_trial = n && Array.length bt.Par.per_trial = n);
  checkb "event stream identical modulo shard lifecycle" true
    (strip_lifecycle (Trace.events sink2) = Trace.events sink1)

let test_sweep_kill_recovery () =
  let n = 12 and seed = 777L in
  let base, _ = Par.run_trials_timed ~domains:1 ~n ~seed sweep_trial in
  (* Kill shard 1 at its third owned trial (global index 6: shard 1 of 3
     owns [4, 8)), then kill the restarted incarnation — which resumed
     after its trial-5 checkpoint — one trial further in. *)
  let kills =
    [
      { Exec.k_shard = 1; k_phase = 0; k_round = 6; k_incarnation = 0;
        k_hang = false };
      { Exec.k_shard = 1; k_phase = 0; k_round = 7; k_incarnation = 1;
        k_hang = false };
    ]
  in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.reset ();
      Metrics.set_enabled was)
    (fun () ->
      let dir = fresh_dir () in
      let got, _ =
        Sweep.run_trials_timed (Exec.config ~shards:3 ~kills ~dir ()) ~n ~seed
          sweep_trial
      in
      rm_rf dir;
      checkb "doubly-killed sweep bit-identical to Par" true (got = base);
      let m = Metrics.snapshot () in
      checki "three spawns metered" 3 m.Metrics.shard_spawns;
      checki "two restarts metered" 2 m.Metrics.shard_restarts)

let test_supervisor_sleep_signal_storm () =
  (* Regression: sleep_ms was a single Unix.sleepf call, which a signal
     delivered mid-sleep can cut short on platforms whose sleep is not
     auto-resumed — under a SIGCHLD storm a 60 ms backoff returned almost
     immediately, collapsing the supervisor's restart backoff schedule
     into a hot loop.  The fix re-sleeps the remaining wall time until
     the deadline.  Storm: an interval timer fires SIGALRM every 2 ms,
     whose handler re-delivers SIGCHLD (the signal a reaping supervisor
     actually receives). *)
  let old_chld = Sys.signal Sys.sigchld (Sys.Signal_handle (fun _ -> ())) in
  let old_alrm =
    Sys.signal Sys.sigalrm
      (Sys.Signal_handle (fun _ -> Unix.kill (Unix.getpid ()) Sys.sigchld))
  in
  let storm = { Unix.it_interval = 0.002; it_value = 0.002 } in
  let off = { Unix.it_interval = 0.; it_value = 0. } in
  ignore (Unix.setitimer Unix.ITIMER_REAL storm);
  Fun.protect
    ~finally:(fun () ->
      ignore (Unix.setitimer Unix.ITIMER_REAL off);
      ignore (Sys.signal Sys.sigalrm old_alrm);
      ignore (Sys.signal Sys.sigchld old_chld))
    (fun () ->
      let t0 = Unix.gettimeofday () in
      Supervisor.sleep_ms 60;
      let elapsed = Unix.gettimeofday () -. t0 in
      checkb
        (Printf.sprintf
           "storm-interrupted sleep honors its schedule (%.1f ms)"
           (1000. *. elapsed))
        true
        (elapsed >= 0.055))

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "frame named errors" `Quick test_frame_named_errors;
    Alcotest.test_case "frame fuzz (mutated bytes)" `Quick
      test_frame_fuzz_mutations;
    Alcotest.test_case "frame incremental prefix decode" `Quick
      test_frame_decode_prefix;
    Alcotest.test_case "frame byte-at-a-time streaming" `Quick
      test_frame_streaming_byte_at_a_time;
    Alcotest.test_case "checkpoint round-trip" `Quick test_ckpt_roundtrip;
    Alcotest.test_case "checkpoint torn writes never observed" `Quick
      test_ckpt_torn_write_never_observed;
    Alcotest.test_case "checkpoint decode fuzz" `Quick test_ckpt_decode_fuzz;
    Alcotest.test_case "router partition properties" `Quick
      test_router_partition_properties;
    Alcotest.test_case "router entry codec + fuzz" `Quick
      test_router_entry_codec;
    Alcotest.test_case "supervisor: kill -9 before first checkpoint" `Quick
      test_supervisor_restart_before_first_checkpoint;
    Alcotest.test_case "supervisor: double kill -9 in one budget" `Quick
      test_supervisor_double_kill_one_budget;
    Alcotest.test_case "supervisor: budget exhaustion is transient" `Quick
      test_supervisor_budget_exhausted_transient;
    Alcotest.test_case "supervisor: fleet-wide death is permanent" `Quick
      test_supervisor_all_dead_permanent;
    Alcotest.test_case "supervisor: hang probes SIGKILL and restart" `Quick
      test_supervisor_hang_probe;
    Alcotest.test_case "supervisor: sleep_ms survives a signal storm" `Quick
      test_supervisor_sleep_signal_storm;
    Alcotest.test_case "kill spec parsing" `Quick test_parse_kill_specs;
    Alcotest.test_case "sharded phases bit-identical (1/2/3/6 shards)" `Quick
      test_exec_identity;
    Alcotest.test_case "kill -9 recovery deterministic, twice" `Quick
      test_exec_kill_recovery_deterministic;
    Alcotest.test_case "sharded sweep identical incl. trace events" `Quick
      test_sweep_identity_with_events;
    Alcotest.test_case "sharded sweep double kill -9 recovery" `Quick
      test_sweep_kill_recovery;
  ]
