(* Tests for the mergeable sketch layer (lib/sketch) and its wiring:
   merge-monoid laws for both sketch types (QCheck), the CMS ε–δ
   guarantee and never-underestimate invariant, bottom-k distinct-count
   accuracy, serialization round-trips, Par.fold_trials determinism, and
   the Empirical.Sketched streaming path's domain/chunk invariance.

   Law tests compare sketches through their canonical bytes
   (to_string/serialize): byte equality is exactly the relation the CI
   determinism diffs rely on, so the laws are checked in the same metric
   they are consumed in. *)

module Cms = Ls_sketch.Cms
module Bottomk = Ls_sketch.Bottomk
module Empirical = Ls_dist.Empirical
module Par = Ls_par.Par
module Rng = Ls_rng.Rng
module Generators = Ls_graph.Generators
module Models = Ls_gibbs.Models
module Async = Ls_local.Async

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- stream generators ------------------------------------------------ *)

(* A key is a short int array (a small configuration); a stream is a list
   of keys, with repeats likely thanks to the tiny alphabet. *)
let key_gen = QCheck.(array_of_size (Gen.int_range 0 3) (int_range 0 3))
let stream_gen = QCheck.(list_of_size (Gen.int_range 0 60) key_gen)

let random_key rng = Array.init (Rng.int rng 4) (fun _ -> Rng.int rng 4)

let random_stream rng n = List.init n (fun _ -> random_key rng)

(* Exact histogram of a stream, the referee for every accuracy test. *)
let exact_counts stream =
  let h = Hashtbl.create 64 in
  List.iter
    (fun key ->
      Hashtbl.replace h key (1 + Option.value ~default:0 (Hashtbl.find_opt h key)))
    stream;
  h

let cms_of ?(width = 16) ?(depth = 3) ~seed stream =
  let t = Cms.create ~width ~depth ~seed in
  List.iter (Cms.add t) stream;
  t

let bk_of ?(k = 8) ~seed stream =
  let t = Bottomk.create ~k ~seed in
  List.iter (Bottomk.add t) stream;
  t

(* --- CMS merge-monoid laws (QCheck) ----------------------------------- *)

let qcheck_cms_merge_laws =
  QCheck.Test.make ~name:"cms merge is commutative/associative with identity"
    ~count:100
    QCheck.(quad small_int stream_gen stream_gen stream_gen)
    (fun (seed, sa, sb, sc) ->
      let seed = Int64.of_int seed in
      let a = cms_of ~seed sa and b = cms_of ~seed sb and c = cms_of ~seed sc in
      let bytes t = Cms.to_string t in
      bytes (Cms.merge a b) = bytes (Cms.merge b a)
      && bytes (Cms.merge (Cms.merge a b) c) = bytes (Cms.merge a (Cms.merge b c))
      && bytes (Cms.merge a (Cms.create ~width:16 ~depth:3 ~seed)) = bytes a)

let qcheck_cms_add_then_merge =
  QCheck.Test.make
    ~name:"cms add-then-merge equals merge-then-add (any stream split)"
    ~count:100
    QCheck.(triple small_int stream_gen small_int)
    (fun (seed, stream, cut) ->
      let seed = Int64.of_int seed in
      let n = List.length stream in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let head = List.filteri (fun i _ -> i < cut) stream in
      let tail = List.filteri (fun i _ -> i >= cut) stream in
      let split = Cms.merge (cms_of ~seed head) (cms_of ~seed tail) in
      Cms.to_string split = Cms.to_string (cms_of ~seed stream))

let qcheck_cms_order_invariant =
  QCheck.Test.make ~name:"cms bytes are arrival-order invariant" ~count:100
    QCheck.(pair small_int stream_gen)
    (fun (seed, stream) ->
      let seed = Int64.of_int seed in
      let shuffled =
        let arr = Array.of_list stream in
        Rng.shuffle (Rng.create seed) arr;
        Array.to_list arr
      in
      Cms.to_string (cms_of ~seed stream)
      = Cms.to_string (cms_of ~seed shuffled))

let qcheck_cms_roundtrip =
  QCheck.Test.make ~name:"cms serialization round-trips" ~count:100
    QCheck.(pair small_int stream_gen)
    (fun (seed, stream) ->
      let t = cms_of ~seed:(Int64.of_int seed) stream in
      let s = Cms.to_string t in
      Cms.to_string (Cms.of_string s) = s
      && Cms.digest (Cms.of_string s) = Cms.digest t)

(* --- CMS statistical guarantees --------------------------------------- *)

let test_cms_never_underestimates () =
  (* Hard invariant, checked over many seeds and a deliberately cramped
     sketch (width 4) where collisions are everywhere. *)
  for seed = 0 to 39 do
    let rng = Rng.create (Int64.of_int (7000 + seed)) in
    let stream = random_stream rng 500 in
    let t = cms_of ~width:4 ~depth:2 ~seed:(Int64.of_int seed) stream in
    Hashtbl.iter
      (fun key true_c ->
        if Cms.count t key < true_c then
          Alcotest.failf "seed %d: count %d < true %d" seed (Cms.count t key)
            true_c)
      (exact_counts stream)
  done

let test_cms_epsilon_delta () =
  (* Per-key failure (overestimate > ε·N) across many independent hash
     families; the observed failure rate must be consistent with δ.  The
     sketch is sized so collisions are common (width 32 on ~100 distinct
     keys) but the bound still holds.  All seeds fixed: deterministic. *)
  let width = 32 and depth = 3 in
  let queries = ref 0 and failures = ref 0 in
  for seed = 0 to 39 do
    let rng = Rng.create (Int64.of_int (8000 + seed)) in
    let stream = random_stream rng 2000 in
    let t = cms_of ~width ~depth ~seed:(Int64.of_int seed) stream in
    let bound =
      Cms.epsilon t *. float_of_int (Cms.total t)
    in
    Hashtbl.iter
      (fun key true_c ->
        incr queries;
        if float_of_int (Cms.count t key - true_c) > bound then incr failures)
      (exact_counts stream)
  done;
  let rate = float_of_int !failures /. float_of_int !queries in
  let delta = Float.exp (-.float_of_int depth) in
  checkb "saw a meaningful number of queries" true (!queries > 1000);
  (* 3δ leaves room for the multinomial noise of a finite sample while
     still failing loudly if the bound is off by a constant factor. *)
  if rate > 3. *. delta then
    Alcotest.failf "failure rate %.4f exceeds 3*delta = %.4f" rate (3. *. delta)

let test_cms_invalid () =
  Alcotest.check_raises "width 0"
    (Invalid_argument "Cms.create: width must be >= 1") (fun () ->
      ignore (Cms.create ~width:0 ~depth:1 ~seed:0L));
  Alcotest.check_raises "depth 0"
    (Invalid_argument "Cms.create: depth must be >= 1") (fun () ->
      ignore (Cms.create ~width:1 ~depth:0 ~seed:0L));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Cms.add: count must be >= 0") (fun () ->
      Cms.add ~count:(-1) (Cms.create ~width:4 ~depth:2 ~seed:0L) [| 1 |]);
  Alcotest.check_raises "incompatible merge"
    (Invalid_argument
       "Cms.merge: incompatible sketches (width/depth/seed must match)")
    (fun () ->
      ignore
        (Cms.merge
           (Cms.create ~width:4 ~depth:2 ~seed:0L)
           (Cms.create ~width:4 ~depth:2 ~seed:1L)))

(* --- bottom-k merge-monoid laws (QCheck) ------------------------------- *)

let qcheck_bk_merge_laws =
  QCheck.Test.make
    ~name:"bottom-k merge is commutative/associative with identity" ~count:100
    QCheck.(quad small_int stream_gen stream_gen stream_gen)
    (fun (seed, sa, sb, sc) ->
      let seed = Int64.of_int seed in
      let a = bk_of ~seed sa and b = bk_of ~seed sb and c = bk_of ~seed sc in
      let bytes t = Bottomk.to_string t in
      bytes (Bottomk.merge a b) = bytes (Bottomk.merge b a)
      && bytes (Bottomk.merge (Bottomk.merge a b) c)
         = bytes (Bottomk.merge a (Bottomk.merge b c))
      && bytes (Bottomk.merge a (Bottomk.create ~k:8 ~seed)) = bytes a)

let qcheck_bk_add_then_merge =
  QCheck.Test.make
    ~name:"bottom-k add-then-merge equals merge-then-add (any stream split)"
    ~count:100
    QCheck.(triple small_int stream_gen small_int)
    (fun (seed, stream, cut) ->
      let seed = Int64.of_int seed in
      let n = List.length stream in
      let cut = if n = 0 then 0 else cut mod (n + 1) in
      let head = List.filteri (fun i _ -> i < cut) stream in
      let tail = List.filteri (fun i _ -> i >= cut) stream in
      let split = Bottomk.merge (bk_of ~seed head) (bk_of ~seed tail) in
      Bottomk.to_string split = Bottomk.to_string (bk_of ~seed stream))

let qcheck_bk_order_invariant =
  QCheck.Test.make ~name:"bottom-k bytes are arrival-order invariant"
    ~count:100
    QCheck.(pair small_int stream_gen)
    (fun (seed, stream) ->
      let seed = Int64.of_int seed in
      let shuffled =
        let arr = Array.of_list stream in
        Rng.shuffle (Rng.create seed) arr;
        Array.to_list arr
      in
      Bottomk.to_string (bk_of ~seed stream)
      = Bottomk.to_string (bk_of ~seed shuffled))

let qcheck_bk_roundtrip =
  QCheck.Test.make ~name:"bottom-k serialization round-trips" ~count:100
    QCheck.(pair small_int stream_gen)
    (fun (seed, stream) ->
      let t = bk_of ~seed:(Int64.of_int seed) stream in
      let s = Bottomk.to_string t in
      Bottomk.to_string (Bottomk.of_string s) = s
      && Bottomk.distinct (Bottomk.of_string s) = Bottomk.distinct t)

let qcheck_bk_retained_counts_exact =
  QCheck.Test.make ~name:"bottom-k retained counts are exact multiplicities"
    ~count:100
    QCheck.(pair small_int stream_gen)
    (fun (seed, stream) ->
      let t = bk_of ~k:4 ~seed:(Int64.of_int seed) stream in
      let exact = exact_counts stream in
      List.for_all
        (fun (key, c) -> Hashtbl.find_opt exact key = Some c)
        (Bottomk.entries t))

(* --- bottom-k statistical guarantees ----------------------------------- *)

let test_bk_exact_below_saturation () =
  let rng = Rng.create 99L in
  let stream = random_stream rng 400 in
  let distinct_true = Hashtbl.length (exact_counts stream) in
  let t = bk_of ~k:100_000 ~seed:5L stream in
  checki "exhaustive below k" distinct_true (Bottomk.size t);
  checkb "distinct exact below k" true
    (Bottomk.distinct t = float_of_int distinct_true);
  checki "total is the stream length" (List.length stream) (Bottomk.total t)

let bk_relative_error ~k ~seed stream =
  let t =
    let t = Bottomk.create ~k ~seed in
    List.iter (Bottomk.add t) stream;
    t
  in
  let truth = float_of_int (Hashtbl.length (exact_counts stream)) in
  (Float.abs (Bottomk.distinct t -. truth) /. truth, Bottomk.rel_std_error t)

let test_bk_distinct_uniform () =
  (* ~5000 distinct keys, k = 256: the estimate must land within 4 relative
     standard errors (1/sqrt(254) ≈ 6.3%) of the truth.  Fixed seeds. *)
  let rng = Rng.create 123L in
  let stream =
    List.init 20_000 (fun _ -> [| Rng.int rng 5000; Rng.int rng 2 |])
  in
  let err, rse = bk_relative_error ~k:256 ~seed:77L stream in
  if err > 4. *. rse then
    Alcotest.failf "uniform: relative error %.4f > 4*rse %.4f" err (4. *. rse)

let test_bk_distinct_skewed () =
  (* Heavily skewed multiplicities (geometric key frequencies): the
     estimator sees each distinct key once no matter its count, so skew
     must not move the estimate. *)
  let rng = Rng.create 321L in
  let stream =
    List.concat_map
      (fun _ ->
        let key = [| Rng.geometric rng 0.001 |] in
        List.init (1 + Rng.int rng 8) (fun _ -> key))
      (List.init 6000 (fun i -> i))
  in
  let err, rse = bk_relative_error ~k:256 ~seed:78L stream in
  if err > 4. *. rse then
    Alcotest.failf "skewed: relative error %.4f > 4*rse %.4f" err (4. *. rse)

let test_bk_invalid () =
  Alcotest.check_raises "k 0" (Invalid_argument "Bottomk.create: k must be >= 1")
    (fun () -> ignore (Bottomk.create ~k:0 ~seed:0L));
  Alcotest.check_raises "incompatible merge"
    (Invalid_argument
       "Bottomk.merge: incompatible sketches (k and seed must match)")
    (fun () ->
      ignore
        (Bottomk.merge (Bottomk.create ~k:4 ~seed:0L)
           (Bottomk.create ~k:5 ~seed:0L)))

(* --- Par.fold_trials ---------------------------------------------------- *)

let test_fold_trials_matches_run_trials () =
  let n = 1000 and seed = 42L in
  let f rng = Rng.int rng 1000 in
  let expected = Array.fold_left ( + ) 0 (Par.run_trials ~n ~seed f) in
  let fold chunk =
    !(Par.fold_trials ~chunk ~n ~seed
        ~init:(fun () -> ref 0)
        ~add:(fun acc x -> acc := !acc + x)
        ~merge:(fun a b -> ref (!a + !b))
        f)
  in
  checki "chunk 1" expected (fold 1);
  checki "chunk 7" expected (fold 7);
  checki "chunk 4096" expected (fold 4096);
  checki "chunk larger than n" expected (fold 10_000)

let test_fold_trials_domain_invariant () =
  let run domains =
    Par.fold_trials ~domains ~chunk:13 ~n:500 ~seed:7L
      ~init:(fun () -> ref 0L)
      ~add:(fun acc x -> acc := Int64.add !acc x)
      ~merge:(fun a b -> ref (Int64.add !a !b))
      Rng.bits64
  in
  checkb "1 vs 4 domains" true (!(run 1) = !(run 4))

let test_fold_trials_edges () =
  let sum =
    Par.fold_trials ~n:0 ~seed:1L
      ~init:(fun () -> ref 0)
      ~add:(fun acc x -> acc := !acc + x)
      ~merge:(fun a b -> ref (!a + !b))
      (fun _ -> 1)
  in
  checki "n = 0 folds to init" 0 !sum;
  Alcotest.check_raises "negative n"
    (Invalid_argument "Par.fold_trials: n must be non-negative") (fun () ->
      ignore
        (Par.fold_trials ~n:(-1) ~seed:1L
           ~init:(fun () -> ())
           ~add:(fun () () -> ())
           ~merge:(fun () () -> ())
           ignore));
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Par.fold_trials: chunk must be >= 1") (fun () ->
      ignore
        (Par.fold_trials ~chunk:0 ~n:1 ~seed:1L
           ~init:(fun () -> ())
           ~add:(fun () () -> ())
           ~merge:(fun () () -> ())
           ignore))

(* --- Empirical.merge / collect_streaming -------------------------------- *)

let empirical_equal a b =
  Empirical.total a = Empirical.total b
  && Empirical.distinct a = Empirical.distinct b
  &&
  let ok = ref true in
  Empirical.iter a (fun sigma c -> ok := !ok && Empirical.count b sigma = c);
  !ok

let test_empirical_merge_laws () =
  let mk seed n =
    let rng = Rng.create seed in
    let e = Empirical.create () in
    List.iter (Empirical.add e) (random_stream rng n);
    e
  in
  let a = mk 1L 50 and b = mk 2L 80 and c = mk 3L 30 in
  checkb "commutative" true
    (empirical_equal (Empirical.merge a b) (Empirical.merge b a));
  checkb "associative" true
    (empirical_equal
       (Empirical.merge (Empirical.merge a b) c)
       (Empirical.merge a (Empirical.merge b c)));
  checkb "identity" true
    (empirical_equal (Empirical.merge a (Empirical.create ())) a);
  checki "totals add" 130 (Empirical.total (Empirical.merge a b))

let test_collect_streaming_matches_collect () =
  let sample rng = random_key rng in
  let batch = Empirical.collect ~n:2000 ~seed:11L sample in
  let streamed chunk =
    Empirical.collect_streaming ~chunk ~n:2000 ~seed:11L sample
  in
  checkb "chunk 64" true (empirical_equal batch (streamed 64));
  checkb "chunk 4096" true (empirical_equal batch (streamed 4096))

(* --- Empirical.Sketched -------------------------------------------------- *)

let test_sketched_counts_dominate () =
  let module S = Empirical.Sketched in
  let sample rng = random_key rng in
  let n = 3000 and seed = 13L in
  let emp = Empirical.collect ~n ~seed sample in
  let sk = S.collect ~width:64 ~depth:3 ~k:32 ~n ~seed sample in
  checki "same totals" n (S.total sk);
  let ok = ref true in
  Empirical.iter emp (fun sigma c -> ok := !ok && S.count sk sigma >= c);
  checkb "CMS never under the exact histogram" true !ok

let test_sketched_domain_and_chunk_invariant () =
  let module S = Empirical.Sketched in
  let sample rng = random_key rng in
  let collect ~domains ~chunk =
    S.serialize
      (S.collect ~domains ~chunk ~width:64 ~depth:3 ~k:32 ~n:2000 ~seed:17L
         sample)
  in
  let reference = collect ~domains:1 ~chunk:64 in
  checkb "domains 1 vs 4, byte-identical" true
    (reference = collect ~domains:4 ~chunk:64);
  checkb "chunk 64 vs 500, byte-identical" true
    (reference = collect ~domains:4 ~chunk:500)

let test_sketched_roundtrip_and_merge () =
  let module S = Empirical.Sketched in
  let rng = Rng.create 29L in
  let mk n =
    let sk = S.create ~width:32 ~depth:2 ~k:8 ~seed:3L () in
    List.iter (S.add sk) (random_stream rng n);
    sk
  in
  let a = mk 200 and b = mk 300 in
  let m = S.merge a b in
  checki "merged total" 500 (S.total m);
  let s = S.serialize m in
  checkb "round-trip bytes" true (S.serialize (S.deserialize s) = s);
  checkb "digest survives" true (S.digest (S.deserialize s) = S.digest m);
  Alcotest.check_raises "trailing bytes rejected"
    (Invalid_argument "Sketched.deserialize: trailing bytes") (fun () ->
      ignore (S.deserialize (s ^ "x")))

let test_decode_fuzz_mutations () =
  (* Satellite of the sharded-execution PR: every non-raising decoder
     must map arbitrary single-byte mutations and truncations of valid
     bytes to Ok or a named Error — never an exception, never an
     allocation sized by an unvalidated length.  (The raising
     [of_string]/[deserialize] wrappers stay for trusted round-trips;
     frames arriving off a socketpair funnel through [decode].) *)
  let rng = Rng.create 8081L in
  let fuzz name enc decode =
    let n = String.length enc in
    (match decode enc with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: pristine bytes rejected: %s" name e);
    for _ = 1 to 1_500 do
      let b = Bytes.of_string enc in
      Bytes.set b (Rng.int rng n) (Char.chr (Rng.int rng 256));
      (match decode (Bytes.to_string b) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "%s: mutation raised %s" name (Printexc.to_string e));
      match decode (String.sub (Bytes.to_string b) 0 (Rng.int rng (n + 1))) with
      | Ok _ | Error _ -> ()
      | exception e ->
          Alcotest.failf "%s: truncation raised %s" name (Printexc.to_string e)
    done;
    match decode (enc ^ "x") with
    | Ok _ -> Alcotest.failf "%s: trailing bytes accepted" name
    | Error e -> checkb (name ^ " names the trailing-byte error") true
        (String.length e > 0)
  in
  let rngs = Rng.create 7L in
  let cms = Cms.create ~width:32 ~depth:3 ~seed:11L in
  List.iter (Cms.add cms) (random_stream rngs 200);
  fuzz "Cms" (Cms.to_string cms) Cms.decode;
  let bk = Bottomk.create ~k:16 ~seed:11L in
  List.iter (Bottomk.add bk) (random_stream rngs 200);
  fuzz "Bottomk" (Bottomk.to_string bk) Bottomk.decode;
  let module S = Empirical.Sketched in
  let sk = S.create ~width:32 ~depth:2 ~k:8 ~seed:3L () in
  List.iter (S.add sk) (random_stream rngs 200);
  fuzz "Sketched" (S.serialize sk) S.decode

let test_sketched_tv_against () =
  let module S = Empirical.Sketched in
  (* A wide sketch on a 2-point support reproduces the exact frequencies,
     so the support-restricted TV agrees with the exact histogram's. *)
  let sk = S.create ~width:1024 ~depth:4 ~k:8 ~seed:5L () in
  for _ = 1 to 300 do S.add sk [| 0 |] done;
  for _ = 1 to 100 do S.add sk [| 1 |] done;
  let exact = [ ([| 0 |], 0.5); ([| 1 |], 0.5) ] in
  checkb "tv on support" true
    (Float.abs (S.tv_against sk exact -. 0.25) < 1e-9);
  checki "collision-free point count" 300 (S.count sk [| 0 |]);
  checkb "freq" true (Float.abs (S.freq sk [| 0 |] -. 0.75) < 1e-12);
  checkb "distinct exact below k" true (S.distinct_estimate sk = 2.)

(* --- sketches fed by the LOCAL sampler under each executor -------------- *)

let test_sketch_under_async_executors () =
  (* Sketch aggregation sits strictly downstream of the executor: build
     the same sketch over samples drawn synchronously, over the
     alpha-synchronizer, and over the adaptive executor.  Synchronizer
     runs are bit-identical to synchronous ones, so the sketch bytes
     must be too; the adaptive executor may degrade a trial but its
     sketch must still dominate the exact histogram of what it drew. *)
  let open Ls_core in
  let inst =
    Instance.unpinned (Models.hardcore (Generators.cycle 8) ~lambda:1.)
  in
  let oracle = Inference.ssm_oracle ~t:2 inst in
  let trials = 40 in
  let rngs = Rng.streams 4242L trials in
  let sketch_over mode =
    let sk = Empirical.Sketched.create ~width:64 ~depth:3 ~k:16 ~seed:9L () in
    let emp = Empirical.create () in
    Array.iter
      (fun rng ->
        let seed = Rng.bits64 (Rng.copy rng) in
        let async = Option.map (fun m -> Async.make ~mode:m ()) mode in
        let r = Local_sampler.sample_resilient oracle ?async inst ~seed in
        if r.Local_sampler.success then begin
          Empirical.Sketched.add sk r.Local_sampler.sigma;
          Empirical.add emp r.Local_sampler.sigma
        end)
      rngs;
    (Empirical.Sketched.serialize sk, sk, emp)
  in
  let sync_bytes, _, _ = sketch_over None in
  let syn_bytes, _, _ = sketch_over (Some Async.Synchronizer) in
  checkb "synchronizer sketch is byte-identical to sync" true
    (sync_bytes = syn_bytes);
  let _, ad_sk, ad_emp = sketch_over (Some Async.Adaptive) in
  checki "adaptive sketch total = its success count"
    (Empirical.total ad_emp)
    (Empirical.Sketched.total ad_sk);
  let ok = ref true in
  Empirical.iter ad_emp (fun sigma c ->
      ok := !ok && Empirical.Sketched.count ad_sk sigma >= c);
  checkb "adaptive sketch dominates its exact histogram" true !ok

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_cms_merge_laws;
    QCheck_alcotest.to_alcotest qcheck_cms_add_then_merge;
    QCheck_alcotest.to_alcotest qcheck_cms_order_invariant;
    QCheck_alcotest.to_alcotest qcheck_cms_roundtrip;
    Alcotest.test_case "cms never underestimates" `Quick
      test_cms_never_underestimates;
    Alcotest.test_case "cms epsilon-delta bound" `Quick test_cms_epsilon_delta;
    Alcotest.test_case "cms invalid arguments" `Quick test_cms_invalid;
    QCheck_alcotest.to_alcotest qcheck_bk_merge_laws;
    QCheck_alcotest.to_alcotest qcheck_bk_add_then_merge;
    QCheck_alcotest.to_alcotest qcheck_bk_order_invariant;
    QCheck_alcotest.to_alcotest qcheck_bk_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_bk_retained_counts_exact;
    Alcotest.test_case "bottom-k exact below saturation" `Quick
      test_bk_exact_below_saturation;
    Alcotest.test_case "bottom-k distinct on uniform stream" `Quick
      test_bk_distinct_uniform;
    Alcotest.test_case "bottom-k distinct on skewed stream" `Quick
      test_bk_distinct_skewed;
    Alcotest.test_case "bottom-k invalid arguments" `Quick test_bk_invalid;
    Alcotest.test_case "fold_trials matches run_trials" `Quick
      test_fold_trials_matches_run_trials;
    Alcotest.test_case "fold_trials domain invariant" `Quick
      test_fold_trials_domain_invariant;
    Alcotest.test_case "fold_trials edge cases" `Quick test_fold_trials_edges;
    Alcotest.test_case "empirical merge laws" `Quick test_empirical_merge_laws;
    Alcotest.test_case "collect_streaming matches collect" `Quick
      test_collect_streaming_matches_collect;
    Alcotest.test_case "sketched counts dominate exact" `Quick
      test_sketched_counts_dominate;
    Alcotest.test_case "sketched domain/chunk invariance" `Quick
      test_sketched_domain_and_chunk_invariant;
    Alcotest.test_case "decode fuzz (mutated bytes)" `Quick
      test_decode_fuzz_mutations;
    Alcotest.test_case "sketched round-trip and merge" `Quick
      test_sketched_roundtrip_and_merge;
    Alcotest.test_case "sketched tv on support" `Quick test_sketched_tv_against;
    Alcotest.test_case "sketch under async executors" `Quick
      test_sketch_under_async_executors;
  ]
