(* Shared statistical assertion helpers for sampler exactness tests, plus
   their own self-tests.

   Ad-hoc "TV < 0.02" thresholds say nothing about how unlikely a false
   alarm is.  These helpers make both knobs explicit: a chi-square
   goodness-of-fit test at a stated significance level (critical value by
   the Wilson-Hilferty approximation) and a TV threshold derived from the
   expected sampling fluctuation plus a McDiarmid deviation term at the
   same significance.  Everything runs on fixed seeds, so a failure is a
   bug, not noise. *)

module Empirical = Ls_dist.Empirical
module Rng = Ls_rng.Rng

let checkb = Alcotest.check Alcotest.bool

(* --- helpers (used by test_samplers.ml) --- *)

(* Upper-tail standard normal quantiles for the significance levels the
   suite uses.  Listed explicitly so every threshold in a test failure
   message can be traced to a number in this file. *)
let z_of_significance = function
  | 0.05 -> 1.6449
  | 0.01 -> 2.3263
  | 0.001 -> 3.0902
  | 0.0001 -> 3.7190
  | s ->
      invalid_arg
        (Printf.sprintf
           "Test_statistics: unsupported significance %g (use 0.05, 0.01, \
            0.001 or 0.0001)"
           s)

(* z at half the significance, for the exact df=1 case chi2_1 = Z^2. *)
let z_of_half_significance = function
  | 0.05 -> 1.95996
  | 0.01 -> 2.57583
  | 0.001 -> 3.29053
  | 0.0001 -> 3.89059
  | s -> ignore (z_of_significance s) (* uniform error message *); assert false

let chi_square_critical ~df ~significance =
  if df < 1 then invalid_arg "Test_statistics.chi_square_critical: df >= 1";
  match df with
  | 1 ->
      (* chi2_1 = Z^2, so the upper quantile is z_{s/2}^2 exactly. *)
      let z = z_of_half_significance significance in
      z *. z
  | 2 ->
      (* chi2_2 = Exp(1/2): P(X > x) = e^{-x/2}, exactly. *)
      ignore (z_of_significance significance);
      -2. *. log significance
  | _ ->
      (* Wilson-Hilferty: chi2_df ~ df*(1 - 2/(9df) + z*sqrt(2/(9df)))^3;
         within ~1% for df >= 3 at these significance levels. *)
      let d = float_of_int df in
      let z = z_of_significance significance in
      let c = 1. -. (2. /. (9. *. d)) +. (z *. sqrt (2. /. (9. *. d))) in
      d *. (c ** 3.)

let tv_threshold ~support ~samples ~significance =
  (* E[TV] <= 0.5*sqrt(k/m) for k outcomes and m samples (Cauchy-Schwarz on
     the per-cell binomial deviations); changing one sample moves TV by at
     most 1/m, so McDiarmid bounds the upward deviation at significance s
     by sqrt(ln(1/s)/(2m)). *)
  if support < 1 || samples < 1 then
    invalid_arg "Test_statistics.tv_threshold: support and samples >= 1";
  let k = float_of_int support and m = float_of_int samples in
  let s =
    (* validate via the same table *)
    ignore (z_of_significance significance);
    significance
  in
  (0.5 *. sqrt (k /. m)) +. sqrt (log (1. /. s) /. (2. *. m))

let check_chi_square name ~significance emp exact =
  let stat = Empirical.chi_square emp exact in
  let df = List.length exact - 1 in
  let critical = chi_square_critical ~df ~significance in
  if not (stat <= critical) then
    Alcotest.failf "%s: chi-square %.2f exceeds critical %.2f (df=%d, alpha=%g)"
      name stat critical df significance

let check_empirical_tv name ~significance emp exact =
  let tv = Empirical.tv_against emp exact in
  let threshold =
    tv_threshold ~support:(List.length exact) ~samples:(Empirical.total emp)
      ~significance
  in
  if not (tv <= threshold) then
    Alcotest.failf "%s: empirical TV %.4f exceeds threshold %.4f (alpha=%g)"
      name tv threshold significance

let check_gof name ~significance emp exact =
  check_chi_square name ~significance emp exact;
  check_empirical_tv name ~significance emp exact

(* --- self-tests --- *)

(* A tiny exact distribution over singleton configurations [|i|]. *)
let simplex weights =
  let total = Array.fold_left ( +. ) 0. weights in
  Array.to_list (Array.mapi (fun i w -> ([| i |], w /. total)) weights)

let sample_die weights =
  let n = 40_000 in
  Empirical.collect ~n ~seed:77L (fun rng -> [| Rng.discrete rng weights |])

let test_fair_die_passes () =
  let w = Array.make 8 1. in
  let emp = sample_die w in
  check_gof "fair die" ~significance:0.001 emp (simplex w)

let test_weighted_die_passes () =
  let w = [| 1.; 2.; 3.; 4. |] in
  let emp = sample_die w in
  check_gof "weighted die" ~significance:0.001 emp (simplex w)

let test_biased_sampler_caught () =
  (* Sample from (1,2,3,4)/10 but test against uniform: both checks must
     reject loudly. *)
  let w = [| 1.; 2.; 3.; 4. |] in
  let emp = sample_die w in
  let uniform = simplex (Array.make 4 1.) in
  let stat = Empirical.chi_square emp uniform in
  let critical = chi_square_critical ~df:3 ~significance:0.001 in
  checkb "chi-square rejects a biased sampler" true (stat > critical);
  let tv = Empirical.tv_against emp uniform in
  let threshold =
    tv_threshold ~support:4 ~samples:(Empirical.total emp) ~significance:0.001
  in
  checkb "TV rejects a biased sampler" true (tv > threshold)

let test_out_of_support_mass_is_infinite_chi_square () =
  let emp = Empirical.create () in
  Empirical.add emp [| 9 |];
  let stat = Empirical.chi_square emp (simplex [| 1.; 1. |]) in
  checkb "mass outside the support is an automatic failure" true
    (stat = infinity)

let test_critical_values_against_tables () =
  (* Reference quantiles from standard chi-square tables; Wilson-Hilferty
     should land within ~1.5%. *)
  List.iter
    (fun (df, significance, expected) ->
      let got = chi_square_critical ~df ~significance in
      checkb
        (Printf.sprintf "df=%d alpha=%g: got %.3f, table %.3f" df significance
           got expected)
        true
        (Float.abs (got -. expected) /. expected < 0.015))
    [
      (1, 0.05, 3.841);
      (1, 0.001, 10.828);
      (2, 0.01, 9.210);
      (3, 0.05, 7.815);
      (7, 0.05, 14.067);
      (10, 0.01, 23.209);
      (28, 0.001, 56.892);
    ]

let test_tv_threshold_shrinks_with_samples () =
  let t m = tv_threshold ~support:16 ~samples:m ~significance:0.01 in
  checkb "more samples, tighter threshold" true
    (t 1_000 > t 10_000 && t 10_000 > t 100_000)

let test_unsupported_significance_rejected () =
  Alcotest.check_raises "unsupported alpha"
    (Invalid_argument
       "Test_statistics: unsupported significance 0.2 (use 0.05, 0.01, 0.001 \
        or 0.0001)") (fun () -> ignore (z_of_significance 0.2))

let test_helpers_domain_invariant () =
  (* The statistical verdict must not depend on the domain count. *)
  let w = [| 2.; 1.; 1. |] in
  let stats domains =
    let emp =
      Empirical.collect ~domains ~n:5_000 ~seed:13L (fun rng ->
          [| Rng.discrete rng w |])
    in
    ( Empirical.chi_square emp (simplex w),
      Empirical.tv_against emp (simplex w) )
  in
  let s1 = stats 1 and s4 = stats 4 in
  checkb "identical statistics at 1 and 4 domains" true (s1 = s4)

let suite =
  [
    Alcotest.test_case "fair die passes" `Quick test_fair_die_passes;
    Alcotest.test_case "weighted die passes" `Quick test_weighted_die_passes;
    Alcotest.test_case "biased sampler caught" `Quick test_biased_sampler_caught;
    Alcotest.test_case "out-of-support mass fails" `Quick
      test_out_of_support_mass_is_infinite_chi_square;
    Alcotest.test_case "critical values vs tables" `Quick
      test_critical_values_against_tables;
    Alcotest.test_case "tv threshold monotone" `Quick
      test_tv_threshold_shrinks_with_samples;
    Alcotest.test_case "unsupported significance" `Quick
      test_unsupported_significance_rejected;
    Alcotest.test_case "verdict domain-invariant" `Quick
      test_helpers_domain_invariant;
  ]
