(* Resource-exhaustion tolerance: the syscall choke point (Ls_shard.Sysio)
   and its deterministic fault plan (Ls_chaos.Sysfault), the degraded-mode
   registry (Ls_obs.Health), checkpointing under injected ENOSPC (both the
   raising [save] and the absorbing [save_best_effort]), and the
   supervisor's fork-EAGAIN retry discipline.

   NOTE: the fork-retry tests fork real child processes, so this suite
   shares the shard/serve suites' before-any-domain constraint — it is
   registered right after the serve-chaos suite in test_main. *)

module Sysio = Ls_shard.Sysio
module Sysfault = Ls_chaos.Sysfault
module Ckpt = Ls_shard.Ckpt
module Frame = Ls_shard.Frame
module Supervisor = Ls_shard.Supervisor
module Health = Ls_obs.Health
module Trace = Ls_obs.Trace

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Whatever a test does to the process-global hook and registry, the
   next test starts clean. *)
let isolated f =
  Fun.protect
    ~finally:(fun () ->
      Sysfault.uninstall ();
      Health.reset ())
    f

let fresh_dir =
  let ctr = ref 0 in
  fun () ->
    incr ctr;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "ls-sysfault-test-%d-%d" (Unix.getpid ()) !ctr)
    in
    (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    d

let rm_rf dir =
  Array.iter
    (fun name -> try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* --- spec string form -------------------------------------------------- *)

let test_spec_string_roundtrip () =
  let spec =
    {
      (Sysfault.quiet 77L) with
      Sysfault.write_fail = 0.5;
      rename_fail = 0.25;
      open_fail = 0.125;
      short_write = 0.75;
      eintr = 0.0625;
      accept_fail = 0.03125;
      fork_fail = 1.;
      ops_budget = 96;
    }
  in
  (match Sysfault.of_string (Sysfault.to_string spec) with
  | Ok s -> checkb "to_string/of_string round-trips" true (s = spec)
  | Error e -> Alcotest.fail ("round-trip failed: " ^ e));
  (match Sysfault.of_string "seed=9,write=0.5" with
  | Ok s ->
      checkb "omitted keys default to quiet" true
        (s = { (Sysfault.quiet 9L) with Sysfault.write_fail = 0.5 })
  | Error e -> Alcotest.fail ("partial spec failed: " ^ e));
  let expect_error what str =
    match Sysfault.of_string str with
    | Ok _ -> Alcotest.fail (what ^ ": expected a parse error")
    | Error e -> checkb (what ^ " is a named error") true (String.length e > 0)
  in
  expect_error "unknown key" "seed=1,fsync=0.5";
  expect_error "rate above 1" "write=1.5";
  expect_error "negative rate" "eintr=-0.1";
  expect_error "non-numeric seed" "seed=banana";
  expect_error "negative budget" "budget=-3";
  expect_error "bare token" "write"

(* --- deterministic verdicts -------------------------------------------- *)

let test_decide_deterministic () =
  let spec =
    {
      (Sysfault.quiet 42L) with
      Sysfault.write_fail = 0.4;
      rename_fail = 0.4;
      open_fail = 0.4;
      short_write = 0.3;
      eintr = 0.3;
      accept_fail = 0.4;
      fork_fail = 0.4;
    }
  in
  let sweep s =
    List.concat_map
      (fun op ->
        List.concat_map
          (fun site ->
            List.map
              (fun count -> Sysfault.decide s ~total:0 ~op ~site ~count)
              [ 0; 1; 2; 3; 4; 5; 6; 7 ])
          [ "ckpt.write"; "ckpt.rename"; "pidfile.rename"; "frame.write";
            "server.accept" ])
      [ Sysio.Write; Sysio.Rename; Sysio.Open; Sysio.Close; Sysio.Accept;
        Sysio.Fork ]
  in
  checkb "the same seed replays the same schedule" true
    (sweep spec = sweep spec);
  checkb "a different seed draws a different schedule" true
    (sweep { spec with Sysfault.seed = 43L } <> sweep spec);
  checkb "the quiet spec always passes" true
    (List.for_all (fun v -> v = Sysio.Pass) (sweep (Sysfault.quiet 42L)))

let test_blast_radius () =
  (* ENOSPC is confined to disk sites: a socket write can at worst be
     shortened or interrupted — both transparent to the byte stream —
     even with the disk-failure dial at maximum. *)
  let spec =
    { (Sysfault.quiet 7L) with Sysfault.write_fail = 1.; short_write = 0.5 }
  in
  for count = 0 to 63 do
    (match
       Sysfault.decide spec ~total:0 ~op:Sysio.Write ~site:"frame.write" ~count
     with
    | Sysio.Fail _ -> Alcotest.fail "hard failure injected at a socket site"
    | Sysio.Pass | Sysio.Short _ | Sysio.Intr -> ());
    match
      Sysfault.decide spec ~total:0 ~op:Sysio.Write ~site:"ckpt.write" ~count
    with
    | Sysio.Fail Unix.ENOSPC -> ()
    | _ -> Alcotest.fail "disk write must fail ENOSPC at rate 1"
  done;
  checkb "ckpt sites are disk sites" true (Sysfault.disk_site "ckpt.write");
  checkb "pidfile sites are disk sites" true
    (Sysfault.disk_site "pidfile.rename");
  checkb "socket sites are not" true (not (Sysfault.disk_site "frame.write"))

let test_budget_quiets () =
  let spec =
    { (Sysfault.quiet 5L) with Sysfault.eintr = 1.; ops_budget = 5 }
  in
  for total = 0 to 4 do
    checkb "within budget the schedule fires" true
      (Sysfault.decide spec ~total ~op:Sysio.Close ~site:"ckpt.close" ~count:0
      = Sysio.Intr)
  done;
  for total = 5 to 20 do
    checkb "past budget every verdict is Pass" true
      (Sysfault.decide spec ~total ~op:Sysio.Close ~site:"ckpt.close" ~count:0
      = Sysio.Pass)
  done

(* --- replay through the real wrappers ---------------------------------- *)

(* Drive the actual Sysio wrappers (openfile/write/close/rename) under an
   installed plan and collect the injected-fault log; two runs from the
   same install must produce the same log, byte for byte. *)
let test_install_replays () =
  isolated @@ fun () ->
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let spec =
    {
      (Sysfault.quiet 1234L) with
      Sysfault.write_fail = 0.3;
      rename_fail = 0.3;
      open_fail = 0.3;
      eintr = 0.3;
      short_write = 0.3;
    }
  in
  let burst () =
    Sysfault.install spec;
    for i = 0 to 19 do
      let tmp = Filename.concat dir (Printf.sprintf "f%d.tmp" i) in
      let final = Filename.concat dir (Printf.sprintf "f%d" i) in
      (try
         let fd =
           Sysio.openfile ~site:"ckpt.open" tmp
             [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
         in
         let b = Bytes.make 64 'x' in
         ignore (Sysio.write ~site:"ckpt.write" fd b 0 64);
         Sysio.close ~site:"ckpt.close" fd;
         Sysio.rename ~site:"ckpt.rename" tmp final
       with Unix.Unix_error _ -> ())
    done;
    Sysfault.injected ()
  in
  let first = burst () in
  let second = burst () in
  checkb "the plan injected something" true (List.length first > 0);
  checkb "reinstalling replays the schedule bit for bit" true
    (first = second);
  checkb "the log names ops, sites and verdicts" true
    (List.for_all
       (fun line ->
         contains line "|"
         && (contains line "ckpt.open" || contains line "ckpt.write"
            || contains line "ckpt.close" || contains line "ckpt.rename"))
       first)

let test_transparent_faults_preserve_writes () =
  (* EINTR storms and short writes are transparent: a checkpoint written
     through them round-trips exactly. *)
  isolated @@ fun () ->
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  Sysfault.install
    {
      (Sysfault.quiet 99L) with
      Sysfault.eintr = 0.6;
      short_write = 0.8;
      ops_budget = 200;
    };
  let meta = { Ckpt.run_id = 11L; shard = 0; phase = 1; round = 4 } in
  let payload = String.init 3000 (fun i -> Char.chr (i mod 251)) in
  Ckpt.save ~dir meta payload;
  checkb "the storm actually fired" true (Sysfault.injected () <> []);
  match Ckpt.load ~dir ~run_id:11L ~shard:0 with
  | Some (m, p) ->
      checkb "meta survives the storm" true (m = meta);
      checkb "payload survives the storm" true (p = payload)
  | None -> Alcotest.fail "checkpoint must load after transparent faults"

(* --- checkpointing under ENOSPC ---------------------------------------- *)

let no_tmp_files dir =
  Array.for_all
    (fun name -> not (Filename.check_suffix name ".tmp"))
    (Sys.readdir dir)

let test_ckpt_failure_unlinks_tmp () =
  isolated @@ fun () ->
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let meta round = { Ckpt.run_id = 21L; shard = 0; phase = 0; round } in
  Ckpt.save ~dir (meta 1) "first";
  Sysfault.install { (Sysfault.quiet 3L) with Sysfault.write_fail = 1. };
  (match Ckpt.save ~dir (meta 2) "second" with
  | () -> Alcotest.fail "save must raise under write_fail=1"
  | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> ()
  | exception e -> Alcotest.fail ("unexpected exception: " ^ Printexc.to_string e));
  checkb "the failed write leaves no temp sibling" true (no_tmp_files dir);
  (match Ckpt.load ~dir ~run_id:21L ~shard:0 with
  | Some (m, p) ->
      checki "the previous checkpoint is intact" 1 m.Ckpt.round;
      checks "with its payload" "first" p
  | None -> Alcotest.fail "previous checkpoint lost");
  (* Same discipline when open itself fails. *)
  Sysfault.install { (Sysfault.quiet 3L) with Sysfault.open_fail = 1. };
  (match Ckpt.save ~dir (meta 3) "third" with
  | () -> Alcotest.fail "save must raise under open_fail=1"
  | exception (Unix.Unix_error _ | Sys_error _) -> ());
  checkb "a failed open leaves no temp sibling either" true (no_tmp_files dir)

let test_ckpt_best_effort_degrades_and_recovers () =
  isolated @@ fun () ->
  let dir = fresh_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) @@ fun () ->
  let meta round = { Ckpt.run_id = 31L; shard = 2; phase = 0; round } in
  Ckpt.save ~dir (meta 1) "good";
  Sysfault.install { (Sysfault.quiet 8L) with Sysfault.write_fail = 1. };
  (* Absorbed: no exception, the checkpoint subsystem goes degraded, the
     last good file stays. *)
  Ckpt.save_best_effort ~dir (meta 2) "lost";
  checkb "the failure marks the checkpoint subsystem" true
    (List.mem_assoc "checkpoint" (Health.degraded ()));
  (match Ckpt.load ~dir ~run_id:31L ~shard:2 with
  | Some (m, _) -> checki "the last good checkpoint survives" 1 m.Ckpt.round
  | None -> Alcotest.fail "previous checkpoint lost");
  (* Faults clear, the next save succeeds and clears the mark. *)
  Sysfault.uninstall ();
  Ckpt.save_best_effort ~dir (meta 3) "recovered";
  checkb "a successful save clears the mark" true
    (not (List.mem_assoc "checkpoint" (Health.degraded ())));
  match Ckpt.load ~dir ~run_id:31L ~shard:2 with
  | Some (m, p) ->
      checki "the new checkpoint landed" 3 m.Ckpt.round;
      checks "with its payload" "recovered" p
  | None -> Alcotest.fail "recovered checkpoint missing"

(* --- the degraded-mode registry ---------------------------------------- *)

let degraded_events f =
  Health.reset ();
  let t = Trace.make () in
  Trace.install t;
  Fun.protect ~finally:Trace.uninstall f;
  List.filter
    (function Trace.Degraded_enter _ | Trace.Degraded_exit _ -> true | _ -> false)
    (Trace.events t)

let test_health_registry () =
  isolated @@ fun () ->
  Health.reset ();
  checkb "fresh registry is healthy" true (not (Health.is_degraded ()));
  checks "and describes as ok" "ok" (Health.describe ());
  let evs =
    degraded_events (fun () ->
        Health.set_degraded ~subsystem:"snapshot" ~reason:"disk full";
        (* Refreshing is silent: one enter per transition, not per call. *)
        Health.set_degraded ~subsystem:"snapshot" ~reason:"still full";
        Health.set_degraded ~subsystem:"accept" ~reason:"EMFILE";
        checkb "degraded pairs are sorted by subsystem" true
          (List.map fst (Health.degraded ()) = [ "accept"; "snapshot" ]);
        checkb "refresh keeps the latest reason" true
          (List.assoc "snapshot" (Health.degraded ()) = "still full");
        Health.clear ~subsystem:"snapshot";
        (* Clearing a healthy subsystem is silent too. *)
        Health.clear ~subsystem:"snapshot";
        Health.clear_all ())
  in
  checkb "registry healthy again" true (not (Health.is_degraded ()));
  let enters =
    List.filter (function Trace.Degraded_enter _ -> true | _ -> false) evs
  in
  let exits =
    List.filter (function Trace.Degraded_exit _ -> true | _ -> false) evs
  in
  checki "one enter per transition" 2 (List.length enters);
  checki "every enter has its exit" 2 (List.length exits)

(* --- supervisor fork retry --------------------------------------------- *)

(* A hook that answers EAGAIN for the first [failures] fork consultations
   at the supervisor site, then passes. *)
let eagain_hook failures ~op ~site:_ ~count =
  match op with
  | Sysio.Fork when count < failures -> Sysio.Fail Unix.EAGAIN
  | _ -> Sysio.Pass

let test_fork_retry_succeeds () =
  isolated @@ fun () ->
  Sysio.set_hook (Some (eagain_hook 3));
  Sysio.reset_counts ();
  let t0 = Unix.gettimeofday () in
  (match Supervisor.fork_with_retry ~attempts:5 ~backoff_ms:5 ~site:"t.fork" () with
  | 0 -> Unix._exit 0
  | pid ->
      let _, status = Unix.waitpid [] pid in
      checkb "the retried fork produced a live child" true
        (status = Unix.WEXITED 0));
  (* Three EAGAINs at 5ms doubling backoff: at least 5+10+20 ms slept. *)
  checkb "backoff actually waited" true (Unix.gettimeofday () -. t0 >= 0.030);
  checkb "success clears the fork degraded mark" true
    (not (List.mem_assoc "fork" (Health.degraded ())))

let test_fork_retry_exhaustion_is_transient () =
  isolated @@ fun () ->
  Sysio.set_hook (Some (eagain_hook max_int));
  Sysio.reset_counts ();
  match Supervisor.fork_with_retry ~attempts:3 ~backoff_ms:1 ~site:"t.fork" () with
  | _ -> Alcotest.fail "fork must fail when EAGAIN persists"
  | exception Supervisor.Failed (Supervisor.Transient, msg) ->
      checkb "exhaustion names EAGAIN and the attempt count" true
        (contains msg "EAGAIN" && contains msg "3");
      checkb "no degraded mark leaks past the failure" true
        (not (List.mem_assoc "fork" (Health.degraded ())))
  | exception Supervisor.Failed (Supervisor.Permanent, _) ->
      Alcotest.fail "EAGAIN exhaustion must classify as Transient"

let test_fork_retry_spares_restart_budget () =
  (* A worker whose forks need retries must not consume the supervisor's
     restart budget: with a budget of 0 restarts, a spawn that succeeds
     only on the third fork attempt still runs to completion. *)
  isolated @@ fun () ->
  Sysio.set_hook (Some (eagain_hook 2));
  Sysio.reset_counts ();
  let policy =
    { Supervisor.default_policy with Supervisor.restart_budget = 0 }
  in
  let body ~shard ~incarnation:_ fd =
    Frame.write_fd fd { Frame.kind = 99; a = shard; b = 0; c = 0; payload = "" }
  in
  let on_frame ctx ~shard (f : Frame.t) =
    if f.Frame.kind = 99 then ctx.Supervisor.mark_done ~shard
  in
  Supervisor.run ~policy ~shards:1 ~body ~on_frame ();
  checkb "zero restart budget survived the EAGAIN storm" true true

let suite =
  [
    Alcotest.test_case "sysfault spec round-trips its string form" `Quick
      test_spec_string_roundtrip;
    Alcotest.test_case "syscall verdicts are deterministic" `Quick
      test_decide_deterministic;
    Alcotest.test_case "ENOSPC stays inside its blast radius" `Quick
      test_blast_radius;
    Alcotest.test_case "the ops budget silences the schedule" `Quick
      test_budget_quiets;
    Alcotest.test_case "an installed plan replays bit for bit" `Quick
      test_install_replays;
    Alcotest.test_case "transparent faults never corrupt a checkpoint" `Quick
      test_transparent_faults_preserve_writes;
    Alcotest.test_case "a failed checkpoint write unlinks its temp file" `Quick
      test_ckpt_failure_unlinks_tmp;
    Alcotest.test_case "best-effort checkpointing degrades and recovers" `Quick
      test_ckpt_best_effort_degrades_and_recovers;
    Alcotest.test_case "health transitions pair enters with exits" `Quick
      test_health_registry;
    Alcotest.test_case "fork EAGAIN is retried with backoff" `Quick
      test_fork_retry_succeeds;
    Alcotest.test_case "fork EAGAIN exhaustion is a transient failure" `Quick
      test_fork_retry_exhaustion_is_transient;
    Alcotest.test_case "fork retries never burn the restart budget" `Quick
      test_fork_retry_spares_restart_budget;
  ]
